// EX4 (extension) - what collision detection is worth (Section 1.4).
// The paper notes that radio networks and the stone-age model, unlike
// the beeping model without CD, "accurately detect the situation where
// a single neighbor emits a signal, which significantly impacts
// algorithm design". Running the identical six-state BFW machine on
// three reception semantics makes the impact concrete:
//
//   beeping ("at least one")   - the paper's model; Lemma 9 holds;
//   radio + CD                 - provably the same predicate;
//                                bit-identical runs (tested);
//   radio without CD           - collisions mask beeps: an erasure
//                                channel in disguise. Elections still
//                                usually complete (a masked
//                                elimination is retried), but the
//                                Lemma 9 floor is gone and elected
//                                leaders can later self-destruct via
//                                desynchronized echoes.
//
//   ./build/bench/radio_collision [--trials 25] [--seed 14] [--threads 0]
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/experiment.hpp"
#include "beeping/engine.hpp"
#include "core/bfw.hpp"
#include "graph/generators.hpp"
#include "radio/radio.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace beepkit;

struct mode_outcome {
  std::size_t elected = 0;
  std::size_t extinct = 0;
  std::vector<double> rounds;
};

template <typename MakeEngine>
mode_outcome run_mode(std::size_t trials, std::uint64_t seed,
                      std::uint64_t horizon, std::size_t threads,
                      analysis::throughput_meter& meter,
                      MakeEngine make_engine) {
  struct mode_trial {
    bool elected = false;
    bool extinct = false;
    std::uint64_t round = 0;
  };
  const auto runs = analysis::map_trials(
      trials, seed, threads,
      [&](std::size_t /*trial*/, std::uint64_t trial_seed) {
        const core::bfw_machine machine(0.5);
        beeping::fsm_protocol proto(machine);
        auto sim = make_engine(proto, trial_seed);
        mode_trial result;
        while (sim->round() < horizon) {
          if (sim->leader_count() == 1) {
            result.elected = true;
            break;
          }
          if (sim->leader_count() == 0) {
            result.extinct = true;
            break;
          }
          sim->step();
        }
        result.round = sim->round();
        return result;
      });
  mode_outcome out;
  for (const mode_trial& run : runs) {
    meter.add_run(run.round);
    if (run.elected) {
      ++out.elected;
      out.rounds.push_back(static_cast<double>(run.round));
    } else if (run.extinct) {
      ++out.extinct;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const support::cli args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 25));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 14));
  const std::size_t threads = args.get_threads();
  analysis::throughput_meter meter;

  std::printf("=== EX4: BFW across reception semantics (Section 1.4) "
              "===\n\n");

  support::table table({"graph", "semantics", "elected", "median rounds",
                        "extinct"});
  table.set_title("First single-leader vs extinction, horizon 100k, " +
                  std::to_string(trials) + " trials");
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::make_path(32));
  graphs.push_back(graph::make_grid(6, 6));
  graphs.push_back(graph::make_complete(32));

  constexpr std::uint64_t horizon = 100000;
  for (const auto& g : graphs) {
    struct mode {
      const char* label;
      bool cd;
    };
    // The beeping model IS the radio+CD row: the predicates coincide
    // and the engines replay each other bit for bit (tested in
    // tests/test_radio.cpp), so one engine serves both rows honestly.
    for (const mode m :
         {mode{"beeping == radio+CD", true}, mode{"radio, no CD", false}}) {
      const auto out = run_mode(
          trials, seed, horizon, threads, meter,
          [&](beeping::fsm_protocol& proto, std::uint64_t s)
              -> std::unique_ptr<radio::engine> {
            return std::make_unique<radio::engine>(g, proto, s, m.cd);
          });
      table.add_row(
          {g.name(), m.label,
           std::to_string(out.elected) + "/" + std::to_string(trials),
           out.elected
               ? support::table::num(support::quantile(out.rounds, 0.5), 0)
               : "-",
           std::to_string(out.extinct) + "/" + std::to_string(trials)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("radio+CD rows equal the beeping rows (same predicate, same\n"
              "seeds). Without CD, elimination beeps masked by collisions\n"
              "slow high-degree graphs down and void the Lemma 9 floor -\n"
              "the \"significant impact\" of Section 1.4, quantified.\n");
  std::printf("\n%s\n", meter.summary(threads).c_str());
  return 0;
}
