#include "popproto/popproto.hpp"

#include <stdexcept>

namespace beepkit::popproto {

scheduler::scheduler(const graph::graph& g, const protocol& proto,
                     std::uint64_t seed)
    : g_(&g), proto_(&proto), rng_(seed), edges_(g.edges()) {
  if (edges_.empty() && g.node_count() > 1) {
    throw std::invalid_argument("popproto::scheduler: graph has no edges");
  }
  states_.assign(g.node_count(), proto.initial_state());
  leader_count_ = 0;
  for (state_id s : states_) {
    if (proto.is_leader(s)) ++leader_count_;
  }
}

void scheduler::step() {
  if (edges_.empty()) {
    ++interactions_;
    return;
  }
  const auto& e = edges_[rng_.uniform_below(edges_.size())];
  graph::node_id initiator = e.u;
  graph::node_id responder = e.v;
  if (rng_.coin()) {
    std::swap(initiator, responder);
  }
  const auto before_leaders =
      static_cast<int>(proto_->is_leader(states_[initiator])) +
      static_cast<int>(proto_->is_leader(states_[responder]));
  const auto [next_i, next_r] =
      proto_->interact(states_[initiator], states_[responder], rng_);
  states_[initiator] = next_i;
  states_[responder] = next_r;
  const auto after_leaders =
      static_cast<int>(proto_->is_leader(next_i)) +
      static_cast<int>(proto_->is_leader(next_r));
  leader_count_ = leader_count_ + after_leaders - before_leaders;
  ++interactions_;
}

void scheduler::run_interactions(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) step();
}

scheduler::run_result scheduler::run_until_single_leader(
    std::uint64_t max_interactions) {
  while (interactions_ < max_interactions) {
    if (leader_count_ <= 1) break;
    step();
  }
  return {interactions_, leader_count_ == 1, leader_count_};
}

graph::node_id scheduler::sole_leader() const {
  if (leader_count_ != 1) {
    return static_cast<graph::node_id>(g_->node_count());
  }
  for (graph::node_id u = 0; u < g_->node_count(); ++u) {
    if (proto_->is_leader(states_[u])) return u;
  }
  return static_cast<graph::node_id>(g_->node_count());
}

std::pair<state_id, state_id> fight_protocol::interact(
    state_id initiator, state_id responder, support::rng& /*rng*/) const {
  if (initiator == leader && responder == leader) {
    return {leader, follower};  // the responder yields
  }
  return {initiator, responder};
}

std::pair<state_id, state_id> token_coalescence_protocol::interact(
    state_id initiator, state_id responder, support::rng& rng) const {
  const bool i_has = initiator == leader;
  const bool r_has = responder == leader;
  if (i_has && r_has) {
    return {leader, follower};  // tokens coalesce
  }
  if (i_has != r_has) {
    // The token crosses the edge with probability 1/2: a lazy random
    // walk over the graph.
    if (rng.coin()) {
      return {r_has ? leader : follower, i_has ? leader : follower};
    }
  }
  return {initiator, responder};
}

}  // namespace beepkit::popproto
