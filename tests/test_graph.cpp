#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace beepkit::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  const graph g;
  EXPECT_EQ(g.node_count(), 0U);
  EXPECT_EQ(g.edge_count(), 0U);
}

TEST(GraphTest, BasicTriangle) {
  const graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_EQ(g.edge_count(), 3U);
  for (node_id u = 0; u < 3; ++u) {
    EXPECT_EQ(g.degree(u), 2U);
  }
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphTest, DuplicateEdgesMerged) {
  const graph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.edge_count(), 2U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 2U);
}

TEST(GraphTest, SelfLoopRejected) {
  EXPECT_THROW(graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeRejected) {
  EXPECT_THROW(graph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(graph(3, {{7, 1}}), std::invalid_argument);
}

TEST(GraphTest, NeighborsSorted) {
  const graph g(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 4U);
  for (std::size_t i = 0; i + 1 < adj.size(); ++i) {
    EXPECT_LT(adj[i], adj[i + 1]);
  }
}

TEST(GraphTest, EdgesCanonicalOrder) {
  const graph g(4, {{3, 2}, {1, 0}, {2, 1}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3U);
  EXPECT_EQ(edges[0], (edge{0, 1}));
  EXPECT_EQ(edges[1], (edge{1, 2}));
  EXPECT_EQ(edges[2], (edge{2, 3}));
}

TEST(GraphTest, DegreeExtremes) {
  const graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3U);
  EXPECT_EQ(g.min_degree(), 1U);
}

TEST(GraphTest, IsolatedNodesAllowed) {
  const graph g(5, {{0, 1}});
  EXPECT_EQ(g.degree(4), 0U);
  EXPECT_EQ(g.min_degree(), 0U);
  EXPECT_TRUE(g.neighbors(4).empty());
}

TEST(GraphTest, NameDefaultAndOverride) {
  graph g(2, {{0, 1}});
  EXPECT_EQ(g.name(), "graph(n=2,m=1)");
  g.set_name("custom");
  EXPECT_EQ(g.name(), "custom");
}

}  // namespace
}  // namespace beepkit::graph
