// Binary-in-JSONL codecs for the giant-trial checkpoint stream
// (core/giant.hpp): base64 for word-plane payloads, LEB128 varints for
// per-node RNG cursors (small integers dominate, so variable length
// beats fixed u32 by 2-4x on disk), and streaming FNV-1a so every
// checkpoint carries an end-to-end digest the resume path verifies
// before adopting any state.
//
// Everything here is deterministic and platform-independent: words are
// serialized little-endian byte order explicitly, so a checkpoint
// written on one machine resumes bit-identically on another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace beepkit::support::codec {

/// Standard base64 (RFC 4648, with padding) over raw bytes.
[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> bytes);

/// Decodes standard base64; returns nullopt on any malformed input
/// (bad character, bad padding, truncated quantum).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base64_decode(
    std::string_view text);

/// Serializes 64-bit words little-endian and base64-encodes them (the
/// plane payload encoding).
[[nodiscard]] std::string encode_words(std::span<const std::uint64_t> words);

/// Inverse of encode_words into a caller-provided destination (the
/// resume path decodes straight into arena-backed plane spans).
/// Returns the number of words written, or nullopt when the text is
/// malformed or decodes to more words than `out` can hold (or to a
/// non-whole number of words).
[[nodiscard]] std::optional<std::size_t> decode_words(
    std::string_view text, std::span<std::uint64_t> out);

/// Appends the LEB128 varint encoding of v (1-10 bytes).
void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Reads one LEB128 varint, advancing `pos`. Returns nullopt on
/// truncation or a >10-byte (overlong) encoding.
[[nodiscard]] std::optional<std::uint64_t> get_uvarint(
    std::span<const std::uint8_t> bytes, std::size_t& pos);

/// Varint-packs a u32 cursor array and base64s it (per-node RNG
/// cursor encoding: one checkpoint section, chunked by the caller).
[[nodiscard]] std::string encode_cursors(std::span<const std::uint32_t> vals);

/// Inverse of encode_cursors into a caller-provided destination.
/// Returns the number of cursors written, or nullopt on malformed
/// input or overflow of `out` / of u32.
[[nodiscard]] std::optional<std::size_t> decode_cursors(
    std::string_view text, std::span<std::uint32_t> out);

/// Streaming 64-bit FNV-1a. update() order defines the digest; the
/// checkpoint hashes every section's raw words/cursors in stream
/// order plus the header integers, so any torn or reordered record
/// fails verification.
class fnv1a {
 public:
  void update(std::span<const std::uint8_t> bytes) noexcept {
    for (const std::uint8_t b : bytes) {
      state_ ^= b;
      state_ *= 0x100000001b3ULL;
    }
  }
  void update_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      state_ ^= static_cast<std::uint8_t>(v >> (8 * i));
      state_ *= 0x100000001b3ULL;
    }
  }
  void update_words(std::span<const std::uint64_t> words) noexcept {
    for (const std::uint64_t w : words) update_u64(w);
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace beepkit::support::codec
