// protocol_spec: the declarative protocol API. Covers the in-code
// builder, JSON round-tripping, the spec-vs-legacy-machine trace
// identity (the bundled machines are wrappers over the spec factories,
// so their trajectories must match draw for draw), a JSON-only protocol
// running end-to-end through the interpreted gear, and the
// election_options runner consolidation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "beeping/engine.hpp"
#include "core/ablations.hpp"
#include "core/bfw.hpp"
#include "core/convergence.hpp"
#include "core/protocol_spec.hpp"
#include "core/timeout_bfw.hpp"
#include "graph/generators.hpp"

namespace beepkit {
namespace {

using beeping::fsm_protocol;
using beeping::transition_rule;
using core::protocol_spec;

// --- builder -----------------------------------------------------------

TEST(ProtocolSpecBuilderTest, HandBuiltBfwMatchesFactory) {
  // Rebuilding BFW by hand through the builder must produce the same
  // compiled table structure as the bundled factory.
  protocol_spec spec;
  spec.name = "hand-built BFW";
  const auto WL = spec.add_state("W*", false, true);
  const auto BL = spec.add_state("B*", true, true);
  const auto FL = spec.add_state("F*", false, true);
  const auto WF = spec.add_state("Wo");
  const auto BF = spec.add_state("Bo", true);
  const auto FF = spec.add_state("Fo");
  spec.initial = WL;
  spec.set_silent(WL, transition_rule::fair_coin(BL, WL));
  spec.set_heard(WL, transition_rule::det(BF));
  spec.set_silent(BL, transition_rule::det(FL));
  spec.set_heard(BL, transition_rule::det(FL));
  spec.set_silent(FL, transition_rule::det(WL));
  spec.set_heard(FL, transition_rule::det(WL));
  spec.set_silent(WF, transition_rule::det(WF));
  spec.set_heard(WF, transition_rule::det(BF));
  spec.set_silent(BF, transition_rule::det(FF));
  spec.set_heard(BF, transition_rule::det(FF));
  spec.set_silent(FF, transition_rule::det(WF));
  spec.set_heard(FF, transition_rule::det(WF));
  spec.validate();
  const auto hand = core::compile_spec_table(spec);
  const auto factory = core::compile_spec_table(core::bfw_spec(0.5));
  EXPECT_EQ(beeping::serialize_table_structure(hand),
            beeping::serialize_table_structure(factory));
}

TEST(ProtocolSpecBuilderTest, PatienceChainLayout) {
  // add_patience_chain appends a silence-incremented run whose last
  // state promotes; timeout_bfw_spec builds its chain through it.
  const auto spec = core::timeout_bfw_spec(0.5, 9);
  EXPECT_EQ(spec.states.size(), 5U + 9U);
  // Chain members: silence -> k+1 (last -> timeout target), beep -> the
  // shared heard target.
  for (std::size_t k = 5; k < 13; ++k) {
    EXPECT_EQ(spec.silent[k].draw, transition_rule::draw_kind::none);
    EXPECT_EQ(spec.silent[k].next, static_cast<beeping::state_id>(k + 1));
    EXPECT_EQ(spec.heard[k].next, spec.heard[5].next);
  }
  EXPECT_EQ(spec.silent[13].next, 0);  // timeout promotes to W*
}

TEST(ProtocolSpecBuilderTest, ValidationRejectsMalformedSpecs) {
  protocol_spec spec;
  const auto a = spec.add_state("A");
  spec.set_silent(a, transition_rule::det(7));  // out of range
  spec.set_heard(a, transition_rule::det(a));
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  protocol_spec dup;
  dup.add_state("A");
  dup.add_state("A");  // duplicate name
  EXPECT_THROW(dup.validate(), std::invalid_argument);

  protocol_spec bad_p;
  const auto s = bad_p.add_state("A");
  bad_p.set_silent(s, transition_rule::bernoulli_draw(1.5, s, s));
  bad_p.set_heard(s, transition_rule::det(s));
  EXPECT_THROW(bad_p.validate(), std::invalid_argument);
}

// --- spec vs legacy machines ------------------------------------------

void expect_same_trajectory(const beeping::state_machine& a,
                            const beeping::state_machine& b,
                            const graph::graph& g, std::uint64_t seed,
                            int rounds, const std::string& label) {
  fsm_protocol proto_a(a);
  fsm_protocol proto_b(b);
  beeping::engine sim_a(g, proto_a, seed);
  beeping::engine sim_b(g, proto_b, seed);
  for (int round = 0; round < rounds; ++round) {
    sim_a.step();
    sim_b.step();
    ASSERT_EQ(proto_a.states(), proto_b.states())
        << label << " diverged at round " << round;
  }
  EXPECT_EQ(sim_a.total_coins_consumed(), sim_b.total_coins_consumed())
      << label;
}

TEST(SpecMachineTest, SpecTrajectoriesMatchLegacyMachines) {
  const auto g = graph::make_grid(8, 8);
  const auto bfw_from_spec = core::make_protocol(core::bfw_spec(0.5));
  expect_same_trajectory(*bfw_from_spec, core::bfw_machine(0.5), g, 42, 300,
                         "bfw");
  const auto timeout_from_spec =
      core::make_protocol(core::timeout_bfw_spec(0.5, 9));
  expect_same_trajectory(*timeout_from_spec, core::timeout_bfw_machine(0.5, 9),
                         g, 42, 300, "timeout_bfw");
  const auto bw_from_spec = core::make_protocol(core::bw_spec(0.5));
  expect_same_trajectory(*bw_from_spec, core::bw_machine(0.5), g, 42, 300,
                         "bw");
}

TEST(SpecMachineTest, ExposesMetadata) {
  const auto machine = core::make_protocol(core::bfw_spec(0.5));
  EXPECT_EQ(machine->state_count(), 6U);
  EXPECT_EQ(machine->initial_state(), 0);
  EXPECT_EQ(machine->state_name(0), "W*");
  EXPECT_TRUE(machine->is_leader(0));
  EXPECT_FALSE(machine->beeps(0));
  EXPECT_TRUE(machine->beeps(1));
  EXPECT_TRUE(machine->compile_table().has_value());
}

// --- JSON form ---------------------------------------------------------

TEST(ProtocolSpecJsonTest, RoundTripIsIdentity) {
  for (const auto& spec :
       {core::bfw_spec(0.5), core::bfw_spec(0.3),
        core::timeout_bfw_spec(0.5, 9), core::bw_spec(0.5)}) {
    const auto text = spec.to_json().dump();
    const auto back = protocol_spec::from_json_text(text);
    EXPECT_EQ(back.to_json().dump(), text) << spec.name;
    // Structural identity, not just textual: same compiled table shape.
    EXPECT_EQ(beeping::serialize_table_structure(core::compile_spec_table(back)),
              beeping::serialize_table_structure(core::compile_spec_table(spec)))
        << spec.name;
  }
}

TEST(ProtocolSpecJsonTest, JsonOnlyProtocolRunsEndToEnd) {
  // A protocol defined purely as JSON - never written as C++ - runs
  // through the interpreted gear with no recompilation. This one is
  // BFW with renamed states, so it elects a leader.
  const std::string text = R"({
    "name": "json-only election",
    "states": [
      {"name": "LeadWait", "leader": true},
      {"name": "LeadBeep", "beep": true, "leader": true},
      {"name": "LeadFrozen", "leader": true},
      {"name": "FollowWait"},
      {"name": "FollowBeep", "beep": true},
      {"name": "FollowFrozen"}
    ],
    "initial": "LeadWait",
    "rules": [
      {"state": "LeadWait",
       "silent": {"coin": true, "then": "LeadBeep", "else": "LeadWait"},
       "heard": {"next": "FollowBeep"}},
      {"state": "LeadBeep",
       "silent": {"next": "LeadFrozen"}, "heard": {"next": "LeadFrozen"}},
      {"state": "LeadFrozen",
       "silent": {"next": "LeadWait"}, "heard": {"next": "LeadWait"}},
      {"state": "FollowWait",
       "silent": {"next": "FollowWait"}, "heard": {"next": "FollowBeep"}},
      {"state": "FollowBeep",
       "silent": {"next": "FollowFrozen"}, "heard": {"next": "FollowFrozen"}},
      {"state": "FollowFrozen",
       "silent": {"next": "FollowWait"}, "heard": {"next": "FollowWait"}}
    ]
  })";
  const auto spec = protocol_spec::from_json_text(text);
  const auto g = graph::make_grid(6, 6);
  const auto outcome = core::run_election(g, spec, 7);
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.final_leader_count, 1U);
  // Structurally BFW, so the registry serves it with the bfw kernel -
  // and the run must equal the interpreted one bit for bit.
  core::election_options interpreted;
  interpreted.compiled_kernel = false;
  const auto ref = core::run_election(g, spec, 7, interpreted);
  EXPECT_EQ(outcome.rounds, ref.rounds);
  EXPECT_EQ(outcome.leader, ref.leader);
  EXPECT_EQ(outcome.total_coins, ref.total_coins);
}

TEST(ProtocolSpecJsonTest, RejectsUnknownStateNames) {
  const std::string text = R"({
    "name": "broken", "states": [{"name": "A"}], "initial": "A",
    "rules": [{"state": "A", "silent": {"next": "Nope"},
               "heard": {"next": "A"}}]
  })";
  EXPECT_THROW(protocol_spec::from_json_text(text), std::invalid_argument);
}

// --- election_options runner ------------------------------------------

TEST(ElectionOptionsTest, LegacyShimsMatchNewRunner) {
  const auto g = graph::make_complete(32);
  const core::bfw_machine machine(0.5);
  const auto legacy = core::run_fsm_election(g, machine, 9, 100000);
  core::election_options options;
  options.max_rounds = 100000;
  const auto fresh = core::run_election(g, machine, 9, options);
  EXPECT_EQ(legacy.converged, fresh.converged);
  EXPECT_EQ(legacy.rounds, fresh.rounds);
  EXPECT_EQ(legacy.leader, fresh.leader);
  EXPECT_EQ(legacy.total_coins, fresh.total_coins);
}

TEST(ElectionOptionsTest, DefaultHorizonDerivedWhenUnset) {
  // No max_rounds: the runner derives a generous horizon and the
  // election completes on a small complete graph.
  const auto g = graph::make_complete(16);
  const auto outcome = core::run_election(g, core::bfw_machine(0.5), 3);
  EXPECT_TRUE(outcome.converged);
}

TEST(ElectionOptionsTest, GearSelectionIsBitIdentical) {
  // All four gear selections (compiled / interpreted plane / sparse
  // virtual off, fast path off) produce the same election transcript.
  const auto g = graph::make_grid(6, 6);
  const core::bfw_machine machine(0.5);
  core::election_options base;
  base.max_rounds = 100000;
  const auto compiled = core::run_election(g, machine, 12, base);
  auto interpreted = base;
  interpreted.compiled_kernel = false;
  const auto plane = core::run_election(g, machine, 12, interpreted);
  auto virtual_gear = base;
  virtual_gear.fast_path = false;
  const auto reference = core::run_election(g, machine, 12, virtual_gear);
  EXPECT_EQ(compiled.rounds, plane.rounds);
  EXPECT_EQ(compiled.leader, plane.leader);
  EXPECT_EQ(compiled.total_coins, plane.total_coins);
  EXPECT_EQ(compiled.rounds, reference.rounds);
  EXPECT_EQ(compiled.leader, reference.leader);
  EXPECT_EQ(compiled.total_coins, reference.total_coins);
}

TEST(ElectionOptionsTest, InitialConfigurationAndWidth) {
  const auto g = graph::make_path(64);
  const core::bfw_machine machine(0.5);
  core::election_options options;
  options.max_rounds = 100000;
  options.compiled_width = 2;
  options.initial = std::vector<beeping::state_id>(
      64, static_cast<beeping::state_id>(core::bfw_state::follower_wait));
  options.initial[10] = static_cast<beeping::state_id>(0);  // one leader seed
  const auto outcome = core::run_election(g, machine, 4, options);
  // One waiting leader, everyone else a follower: it wins immediately.
  EXPECT_TRUE(outcome.converged);
  EXPECT_EQ(outcome.leader, 10U);
}

}  // namespace
}  // namespace beepkit
