#include "beeping/protocol.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace beepkit::beeping {

namespace {

void check_successor(const state_machine& machine, state_id successor,
                     const char* what) {
  if (successor >= machine.state_count()) {
    throw std::invalid_argument(std::string("build_machine_table: ") + what +
                                " successor out of range for " +
                                machine.name());
  }
}

void check_rule(const state_machine& machine, const transition_rule& rule,
                const char* row) {
  if (rule.draw == transition_rule::draw_kind::none) {
    check_successor(machine, rule.next, row);
  } else {
    check_successor(machine, rule.on_true, row);
    check_successor(machine, rule.on_false, row);
  }
  if (rule.draw == transition_rule::draw_kind::bernoulli &&
      !(rule.p >= 0.0 && rule.p <= 1.0)) {
    throw std::invalid_argument(
        "build_machine_table: bernoulli parameter outside [0, 1] for " +
        machine.name());
  }
}

}  // namespace

machine_table build_machine_table(const state_machine& machine,
                                  std::span<const transition_rule> bot,
                                  std::span<const transition_rule> top) {
  const std::size_t n = machine.state_count();
  if (bot.size() != n || top.size() != n) {
    throw std::invalid_argument(
        "build_machine_table: row count != state_count for " + machine.name());
  }
  machine_table table;
  table.rules.resize(2 * n);
  table.beep_flag.resize(n);
  table.leader_flag.resize(n);
  table.bot_identity.resize(n);
  table.meta.resize(n);
  // Scratch generator for probing deterministic rows; by definition a
  // deterministic delta never draws from it.
  support::rng probe(0x7ab1e5ULL);
  for (std::size_t s = 0; s < n; ++s) {
    const auto state = static_cast<state_id>(s);
    check_rule(machine, bot[s], "delta_bot");
    check_rule(machine, top[s], "delta_top");
    // Deterministic rows can be verified against the virtual deltas
    // outright; stochastic rows are pinned by the differential tests.
    if (bot[s].draw == transition_rule::draw_kind::none &&
        machine.delta_bot(state, probe) != bot[s].next) {
      throw std::invalid_argument(
          "build_machine_table: delta_bot row disagrees with machine " +
          machine.name() + " in state " + machine.state_name(state));
    }
    if (top[s].draw == transition_rule::draw_kind::none &&
        machine.delta_top(state, probe) != top[s].next) {
      throw std::invalid_argument(
          "build_machine_table: delta_top row disagrees with machine " +
          machine.name() + " in state " + machine.state_name(state));
    }
    table.rules[2 * s] = bot[s];
    table.rules[2 * s + 1] = top[s];
    table.beep_flag[s] = machine.beeps(state) ? 1 : 0;
    table.leader_flag[s] = machine.is_leader(state) ? 1 : 0;
    table.bot_identity[s] =
        (bot[s].draw == transition_rule::draw_kind::none &&
         bot[s].next == state)
            ? 1
            : 0;
    table.meta[s] = static_cast<std::uint8_t>(
        (table.beep_flag[s] != 0 ? machine_table::meta_beep : 0) |
        (table.leader_flag[s] != 0 ? machine_table::meta_leader : 0) |
        (table.bot_identity[s] != 0 ? machine_table::meta_bot_identity : 0));
  }
  return table;
}

void fsm_protocol::materialize_cold() const {
  states_stale_ = false;
  // A deferred reset leaves the vector empty; grow it on the first
  // read that actually needs it.
  if (deferred_nodes_ != 0 && states_.size() != deferred_nodes_) {
    states_.resize(deferred_nodes_);
  }
  if (source_ == nullptr) {
    // Deferred reset with no authority bound yet: every node still
    // sits in the initial state.
    std::fill(states_.begin(), states_.end(), machine_->initial_state());
    return;
  }
  ++materializations_;
  source_->materialize_states(std::span<state_id>(states_));
}

void fsm_protocol::reset(std::size_t node_count, support::rng& /*init_rng*/) {
  // Wholesale overwrite: the fresh vector is the new truth, so any
  // pending lazy unpack is moot.
  states_stale_ = false;
  deferred_nodes_ = node_count;
  states_.assign(node_count, machine_->initial_state());
  ++config_version_;
}

void fsm_protocol::reset_deferred(std::size_t node_count) {
  states_.clear();
  states_.shrink_to_fit();
  deferred_nodes_ = node_count;
  states_stale_ = true;
  ++config_version_;
}

bool fsm_protocol::beeping(graph::node_id node) const {
  materialize();
  return machine_->beeps(states_[node]);
}

bool fsm_protocol::is_leader(graph::node_id node) const {
  materialize();
  return machine_->is_leader(states_[node]);
}

void fsm_protocol::step(graph::node_id node, bool heard,
                        support::rng& node_rng) {
  materialize();  // the vector becomes truth before it is mutated
  states_[node] = heard ? machine_->delta_top(states_[node], node_rng)
                        : machine_->delta_bot(states_[node], node_rng);
}

std::string fsm_protocol::describe(graph::node_id node) const {
  materialize();
  return machine_->state_name(states_[node]);
}

void fsm_protocol::set_states(std::vector<state_id> states) {
  if (states.size() != states_.size()) {
    throw std::invalid_argument(
        "fsm_protocol::set_states: configuration size " +
        std::to_string(states.size()) + " != node count " +
        std::to_string(states_.size()));
  }
  for (state_id s : states) {
    if (s >= machine_->state_count()) {
      throw std::invalid_argument("fsm_protocol::set_states: invalid state id");
    }
  }
  states_stale_ = false;  // wholesale overwrite: the new vector is truth
  states_ = std::move(states);
  ++config_version_;
}

}  // namespace beepkit::beeping
