// Experiment harness: named election algorithms behind one facade,
// multi-trial runners with seed discipline, and the aggregates the
// bench binaries print. Every binary in bench/ is a thin driver over
// this module, so the Table-1 comparison, the Theorem-2/3 sweeps and
// the Section-5 experiments all share trial mechanics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/convergence.hpp"
#include "graph/graph.hpp"
#include "support/stats.hpp"

namespace beepkit::analysis {

/// A named, self-contained election algorithm. `run` executes one
/// trial; it must be deterministic in (graph, seed).
struct algorithm {
  std::string name;
  std::function<core::election_outcome(const graph::graph& g,
                                       std::uint64_t seed,
                                       std::uint64_t max_rounds)>
      run;
};

/// BFW with fixed p (the paper's uniform protocol; Theorem 2).
[[nodiscard]] algorithm make_bfw(double p);

/// BFW with p = 1/(D+1) (Theorem 3; D must upper-bound the diameter).
[[nodiscard]] algorithm make_bfw_known_diameter(std::uint32_t diameter);

/// Unique-ID beep-wave broadcast baseline (Table 1 class [14]/[11]).
[[nodiscard]] algorithm make_id_broadcast(std::uint32_t diameter);

/// Clique lottery baseline (Table 1 class [17]); clique-only.
[[nodiscard]] algorithm make_clique_lottery(double epsilon);

/// Aggregates over a batch of trials of one algorithm on one graph.
struct trial_stats {
  std::string algorithm_name;
  std::string graph_name;
  std::size_t node_count = 0;
  std::uint32_t diameter = 0;
  std::size_t trials = 0;
  std::size_t converged = 0;
  support::summary rounds;       ///< Convergence rounds (horizon-capped).
  double mean_coins_per_node_round = 0.0;  ///< Fair-coin rate (E10).
};

/// Runs `trials` independent elections (seeds derived from `seed`).
[[nodiscard]] trial_stats run_trials(const graph::graph& g,
                                     std::uint32_t diameter,
                                     const algorithm& algo,
                                     std::size_t trials, std::uint64_t seed,
                                     std::uint64_t max_rounds);

/// A (graph, diameter) test instance; diameter is computed once.
struct instance {
  graph::graph g;
  std::uint32_t diameter = 0;
};

/// Computes the diameter (exact up to `exact_limit` nodes, double-sweep
/// beyond) and bundles it with the graph.
[[nodiscard]] instance make_instance(graph::graph g,
                                     std::size_t exact_limit = 4096);

}  // namespace beepkit::analysis
