// Synchronous radio-network substrate (paper Section 1.4, [6]).
//
// Radio networks differ from the beeping model in one crucial way: a
// listening node receives a signal only when EXACTLY ONE neighbor
// transmits in that round; simultaneous transmissions collide. With
// collision detection (CD) the listener can at least tell collision
// from silence - which restores exactly the beeping model's "at least
// one neighbor beeped" predicate. Without CD, collisions are
// indistinguishable from silence.
//
// The paper remarks that both radio networks and the stone-age model
// "allow nodes to accurately detect the situation where a single
// neighbor emits a signal... which significantly impacts algorithm
// design". This substrate makes the remark measurable for BFW:
//
//   * radio + CD   == the beeping model (engine is bit-identical,
//                     tested);
//   * radio w/o CD: a beep masked by a collision is an erasure, so
//     waves desynchronize and (as with channel noise, see EX1) the
//     Lemma 9 floor is lost; the bench quantifies how much collision
//     detection is worth.
//
// Implementation note: the engine drives the same beeping::protocol
// interface; only the `heard` predicate differs. A node that transmits
// always knows it did (its own signal never counts as a reception).
#pragma once

#include <cstdint>
#include <vector>

#include "beeping/protocol.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepkit::radio {

/// What a listening node's receiver reports for one round.
enum class reception : std::uint8_t {
  silence = 0,   ///< no neighbor transmitted
  single = 1,    ///< exactly one neighbor transmitted (message received)
  collision = 2, ///< two or more neighbors transmitted
};

class engine {
 public:
  /// `collision_detection`: whether a listener can distinguish
  /// `collision` from `silence`. Streams are laid out exactly like the
  /// beeping engine's, so a CD radio run is bit-identical to the
  /// beeping run with the same seed.
  engine(const graph::graph& g, beeping::protocol& proto, std::uint64_t seed,
         bool collision_detection);

  void step();
  void run_rounds(std::uint64_t count);

  /// Only exactly-one-leader counts as convergence: in the lossy radio
  /// model collisions can eliminate the last leader (extinction), and
  /// that failure must not be reported as a successful election.
  struct run_result {
    std::uint64_t rounds = 0;
    bool converged = false;   ///< exactly one leader at the stop round
    std::size_t leaders = 0;  ///< leader count at the stop round
  };
  run_result run_until_single_leader(std::uint64_t max_rounds);

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::size_t leader_count() const noexcept {
    return leader_count_;
  }
  [[nodiscard]] graph::node_id sole_leader() const;
  [[nodiscard]] bool transmitting(graph::node_id u) const {
    return transmitting_[u] != 0;
  }
  /// Receiver verdict of the current round (computed during step();
  /// meaningful for the *previous* round after a step). Exposed for
  /// tests via last_reception().
  [[nodiscard]] reception last_reception(graph::node_id u) const {
    return receptions_[u];
  }
  [[nodiscard]] bool collision_detection() const noexcept { return cd_; }

 private:
  void refresh_round_state();

  const graph::graph* g_;
  beeping::protocol* proto_;
  bool cd_;
  std::vector<support::rng> rngs_;
  std::vector<std::uint8_t> transmitting_;
  std::vector<reception> receptions_;
  std::uint64_t round_ = 0;
  std::size_t leader_count_ = 0;
};

}  // namespace beepkit::radio
