// Ablation: BFW without the Frozen state.
//
// DESIGN.md calls out the frozen state as the design choice to ablate:
// F is what prevents a leader's own wave from bouncing back off its
// neighbors and eliminating it. The four-state variant below ("BW")
// removes F - after beeping, a node returns straight to waiting. A
// leader u that beeps in round t has all waiting neighbors beep in
// round t+1, which u (now waiting, not frozen) hears, eliminating u:
// leaders self-destruct and the population can reach zero leaders,
// violating the paper's Lemma 9. Tests and the ablation bench
// demonstrate exactly this failure.
//
// The transition structure lives in `bw_spec` (core/protocol_spec.hpp);
// this class interprets it through `spec_machine` - the ablation must
// fail at full speed too, so the spec compiles to the same fast-path
// table shape as BFW's.
#pragma once

#include <string>

#include "beeping/protocol.hpp"
#include "core/protocol_spec.hpp"

namespace beepkit::core {

/// Four-state broken variant: {W•, B•, W◦, B◦}, no frozen phase.
class bw_machine final : public spec_machine {
 public:
  /// Throws std::invalid_argument unless 0 < p < 1.
  explicit bw_machine(double p) : spec_machine(bw_spec(p)), p_(p) {}

  static constexpr beeping::state_id leader_wait = 0;
  static constexpr beeping::state_id leader_beep = 1;
  static constexpr beeping::state_id follower_wait = 2;
  static constexpr beeping::state_id follower_beep = 3;

  [[nodiscard]] double p() const noexcept { return p_; }

 private:
  double p_;
};

}  // namespace beepkit::core
