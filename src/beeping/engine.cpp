#include "beeping/engine.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "graph/patch.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace beepkit::beeping {

namespace {

constexpr std::size_t word_count(std::size_t n) noexcept {
  return (n + 63) / 64;
}

constexpr bool test_bit(std::span<const std::uint64_t> words,
                        graph::node_id u) noexcept {
  return (words[u >> 6] >> (u & 63)) & 1ULL;
}

constexpr void set_bit(std::span<std::uint64_t> words,
                       graph::node_id u) noexcept {
  words[u >> 6] |= 1ULL << (u & 63);
}

// Spreads the low 8 bits of `x` into 8 bytes holding 0/1 (bit i ->
// byte i). The multiply places bit i at bit 7 of byte 7-i; the byte
// swap restores ascending order.
inline std::uint64_t spread_bits_to_bytes(std::uint64_t x) noexcept {
  return __builtin_bswap64((x * 0x8040201008040201ULL) &
                           0x8080808080808080ULL) >>
         7;
}

// Widens the low/high 4 bytes of a packed-byte word into 4 uint16
// lanes (classic morton spacing).
inline std::uint64_t widen_bytes_to_u16(std::uint64_t bytes) noexcept {
  std::uint64_t x = bytes & 0xFFFFFFFFULL;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  return x;
}

}  // namespace

engine::engine(graph::topology_view view, protocol& proto, std::uint64_t seed)
    : engine(std::move(view), proto, seed, noise_model{}) {}

engine::engine(graph::topology_view view, protocol& proto, std::uint64_t seed,
               const noise_model& noise)
    : engine(std::move(view), proto, seed, noise, engine_config{}) {}

engine::engine(graph::topology_view view, protocol& proto, std::uint64_t seed,
               const noise_model& noise, const engine_config& config)
    : view_(std::move(view)),
      n_(view_.node_count()),
      proto_(&proto),
      config_(config),
      noise_(noise),
      gather_(view_) {
  const std::size_t n = n_;
  // NUMA placement must be requested before the first chunk is mapped;
  // best-effort (no-op off Linux or when mbind is refused).
  if (config_.numa_interleave) arena_.set_numa_interleave(true);
  // Bind-time fast-path detection: an FSM protocol whose machine
  // compiles to a flat table runs rounds without virtual dispatch.
  fsm_ = dynamic_cast<fsm_protocol*>(&proto);
  if (fsm_ != nullptr) {
    table_ = fsm_->machine().compile_table();
  }
  // Plane-mode eligibility. (The SWAR transpose writes state ids
  // through little-endian byte order; the sparse sweep carries
  // big-endian hosts.) The state cap is 64: six planes cover every
  // bundled machine including Timeout-BFW up to T = 59; larger
  // machines take the sparse sweep.
  plane_capable_ = table_.has_value() && table_->state_count() <= 64 &&
                   std::endian::native == std::endian::little;
  if (config_.pin_plane_mode && (!plane_capable_ || fsm_ == nullptr)) {
    throw std::invalid_argument(
        "beeping::engine: pin_plane_mode requires a plane-capable "
        "fsm_protocol machine");
  }
  if (!config_.track_beep_counts && !config_.pin_plane_mode) {
    // The sparse/virtual gears count beeps unconditionally; only the
    // pinned plane sweep can run without the per-node count array.
    throw std::invalid_argument(
        "beeping::engine: track_beep_counts = false requires "
        "pin_plane_mode");
  }
  support::draw_mode mode = support::draw_mode::coins;
  if (config_.lazy_rng) {
    if (noise_.enabled()) {
      throw std::invalid_argument(
          "beeping::engine: lazy_rng cannot serve a noise model "
          "(dedicated noise streams stay dense)");
    }
    if (!table_.has_value()) {
      throw std::invalid_argument(
          "beeping::engine: lazy_rng requires a compiled machine table");
    }
    // A 4-byte cursor can only replay a stream whose draws are uniform
    // in kind: all fair coins (one bit each) or all raw words.
    bool any_coin = false;
    bool any_raw = false;
    for (const transition_rule& rule : table_->rules) {
      if (rule.draw == transition_rule::draw_kind::coin) any_coin = true;
      if (rule.draw == transition_rule::draw_kind::bernoulli) any_raw = true;
    }
    if (any_coin && any_raw) {
      throw std::invalid_argument(
          "beeping::engine: lazy_rng requires draw rules uniform in kind "
          "(all coin or all bernoulli)");
    }
    mode = any_raw ? support::draw_mode::raw64 : support::draw_mode::coins;
  }
  // Stream n (never a node id) initializes the protocol, so identifier
  // draws in baselines do not perturb the per-node round streams.
  rngs_ = config_.lazy_rng ? support::rng_store::lazy(seed, n + 1, mode)
                           : support::rng_store::dense(seed, n + 1);
  if (config_.pin_plane_mode) {
    // No O(n) state vector: the planes are seeded from the machine's
    // initial state below and stay authoritative for the whole run.
    fsm_->reset_deferred(n);
  } else {
    proto_->reset(n, rngs_[n]);
  }
  if (noise_.enabled()) {
    // Dedicated streams: enabling noise must not perturb the protocol
    // coins, and a (0, 0) noise model stays bit-identical.
    noise_rngs_ = support::make_node_streams(seed ^ 0x6e015eULL, n);
  }
  const std::size_t words = word_count(n);
  beep_words_ = arena_.alloc_words(words);
  heard_words_ = arena_.alloc_words(words);
  active_words_ = arena_.alloc_words(words);
  if (config_.track_beep_counts) beep_counts_.assign(n, 0);
  if (plane_capable_) {
    plane_count_ = 1;
    while ((std::size_t{1} << plane_count_) < table_->state_count()) {
      ++plane_count_;
    }
    for (std::size_t j = 0; j < plane_count_; ++j) {
      planes_[j] = arena_.alloc_words(words);
    }
    leader_words_ = arena_.alloc_words(words);
    analyze_plane_plan();
    // beepc kernel dispatch: a registered kernel whose baked-in
    // structure matches this table takes over the plane rounds
    // (stochastic rows stay runtime data, so e.g. the one bfw kernel
    // serves every p).
    compiled_kernel_ = find_compiled_kernel(*table_);
  }
  tail_mask_ = (n % 64 == 0) ? ~0ULL : ((1ULL << (n % 64)) - 1);
  if (plane_capable_) {
    for (auto& lp : ledger_planes_) lp = arena_.alloc_words(words);
    // Planes authoritative: outside reads of the protocol's state
    // vector unpack from the planes on demand (lazy materialization).
    fsm_->bind_lazy_source(this);
  }
  dirty_ledger_words_ = arena_.alloc_words(word_count(words));
  slot_leaders_.assign(1, 0);
  slot_active_.assign(1, 0);
  slot_dirty_.assign(1, std::vector<std::uint64_t>(dirty_ledger_words_.size(), 0));
  if (config_.pin_plane_mode) {
    plane_pinned_ = true;
    enter_plane_mode_initial();
    if (fsm_ != nullptr) synced_version_ = fsm_->config_version();
  } else {
    refresh_round_state();
  }
}

engine::~engine() {
  // The protocol outlives the engine: flush any pending lazy unpack
  // and detach the hook before the planes disappear. Pinned giant
  // engines abandon instead - the O(n) unpack is exactly what the
  // mode exists to avoid, and the run's result was read off the
  // planes already.
  if (fsm_ != nullptr && plane_capable_) {
    if (plane_pinned_) {
      fsm_->abandon_lazy_source(this);
    } else {
      fsm_->unbind_lazy_source(this);
    }
  }
}

void engine::set_parallelism(std::size_t threads, std::size_t tile_words) {
  const std::size_t resolved =
      threads == 0 ? support::resolve_threads(0) : threads;
  if (resolved <= 1) {
    exec_.reset();
    gather_.set_executor(nullptr, 0);
    tile_words_ = tile_words;
    rngs_.set_slots(1);
    slot_leaders_.assign(1, 0);
    slot_active_.assign(1, 0);
    slot_dirty_.assign(
        1, std::vector<std::uint64_t>(dirty_ledger_words_.size(), 0));
    return;
  }
  if (!exec_ || exec_->thread_count() != resolved) {
    exec_ = std::make_unique<support::tile_executor>(resolved);
  }
  // tile_words == 0 resolves through the one-shot micro-probe
  // (whole-range vs L2-sized tiles). The probe result is cached for
  // the process, so re-applying parallelism - or restarting the trial
  // via restart_from_protocol - always lands on the same tile size.
  tile_words_ = tile_words != 0 ? tile_words
                                : support::autotuned_tile_words(*exec_);
  gather_.set_executor(exec_.get(), tile_words_);
  // One lazy-store scratch context per executor slot: tiles own
  // disjoint stream ranges, and the engine syncs all slots after every
  // tiled round's barrier (see rng_store's class comment).
  rngs_.set_slots(resolved);
  slot_leaders_.assign(resolved, 0);
  slot_active_.assign(resolved, 0);
  slot_dirty_.assign(
      resolved, std::vector<std::uint64_t>(dirty_ledger_words_.size(), 0));
}

void engine::distribute_plane_pages() {
  if (exec_) arena_.distribute_first_touch(*exec_, tile_words_);
}

// Detects the bit-sliced-counter runs (see plane_chain in the header):
// maximal state ranges [first, last] where every member shares one
// draw-free delta_top target and one meta byte, and delta_bot below
// `last` is exactly "state + 1". Runs shorter than 4 states are left
// to the per-state decode (the range comparison costs ~4 plane ops, so
// tiny runs would not pay for it).
void engine::analyze_plane_plan() {
  const machine_table& table = *table_;
  const std::size_t q = table.state_count();
  plane_chain_member_.assign(q, 0);
  plane_chains_.clear();
  const auto det_next = [&table](std::size_t s, bool heard,
                                 state_id& next) noexcept {
    const transition_rule& rule =
        table.rule(static_cast<state_id>(s), heard);
    if (rule.draw != transition_rule::draw_kind::none) return false;
    next = rule.next;
    return true;
  };
  for (std::size_t s = 0; s < q; ++s) {
    if (plane_chain_member_[s] != 0) continue;
    state_id top_next = 0;
    if (!det_next(s, true, top_next)) continue;
    std::size_t last = s;
    while (last + 1 < q && plane_chain_member_[last + 1] == 0) {
      state_id bot_next = 0;
      if (!det_next(last, false, bot_next) || bot_next != last + 1) break;
      state_id next_top = 0;
      if (!det_next(last + 1, true, next_top) || next_top != top_next) break;
      if (table.meta[last + 1] != table.meta[s]) break;
      ++last;
    }
    if (last - s + 1 < 4) continue;
    plane_chains_.push_back({static_cast<state_id>(s),
                             static_cast<state_id>(last), top_next,
                             table.meta[s]});
    for (std::size_t t = s; t <= last; ++t) plane_chain_member_[t] = 1;
  }
}

void engine::add_observer(observer* obs) {
  observers_.push_back(obs);
  obs->on_round(make_view());
}

void engine::refresh_round_state() {
  const std::size_t n = n_;
  // The protocol's state vector becomes the source of truth here:
  // materialize any pending plane unpack, then drop out of plane mode;
  // it re-engages on the next dense round.
  if (fsm_ != nullptr) fsm_->ensure_states_fresh();
  plane_mode_ = false;
  leader_count_ = 0;
  std::fill(beep_words_.begin(), beep_words_.end(), 0);
  beep_flags_valid_ = false;  // byte mirror rebuilt lazily on demand
  if (fast_path_active()) {
    // Table-driven refresh: same sweep, zero virtual calls; also
    // rebuilds the active set the fused round sweep relies on.
    const machine_table& table = *table_;
    const std::span<state_id> states = fsm_->raw_states();
    std::fill(active_words_.begin(), active_words_.end(), 0);
    for (graph::node_id u = 0; u < n; ++u) {
      const state_id s = states[u];
      if (table.beeps(s)) {
        ++beep_counts_[u];
        set_bit(beep_words_, u);
      }
      leader_count_ += table.leader_flag[s];
      if (table.bot_identity[s] == 0) set_bit(active_words_, u);
    }
  } else if (fsm_ != nullptr) {
    // Virtual gear on an FSM protocol (fast path disabled or the
    // machine did not compile): states are fresh (see above), so read
    // the flags through the machine directly instead of paying the
    // per-call guard in fsm_protocol::beeping/is_leader.
    const state_machine& machine = fsm_->machine();
    const state_id* const states = fsm_->raw_states().data();
    for (graph::node_id u = 0; u < n; ++u) {
      if (machine.beeps(states[u])) {
        ++beep_counts_[u];
        set_bit(beep_words_, u);
      }
      if (machine.is_leader(states[u])) ++leader_count_;
    }
  } else {
    for (graph::node_id u = 0; u < n; ++u) {
      if (proto_->beeping(u)) {
        ++beep_counts_[u];
        set_bit(beep_words_, u);
      }
      if (proto_->is_leader(u)) ++leader_count_;
    }
  }
  if (fsm_ != nullptr) synced_version_ = fsm_->config_version();
}

void engine::rebuild_active_set() {
  const std::size_t n = n_;
  const machine_table& table = *table_;
  const std::span<state_id> states = fsm_->raw_states();
  std::fill(active_words_.begin(), active_words_.end(), 0);
  for (graph::node_id u = 0; u < n; ++u) {
    if (table.bot_identity[states[u]] == 0) set_bit(active_words_, u);
  }
}

void engine::set_fast_path_enabled(bool enabled) {
  if (enabled && !fast_enabled_ && table_.has_value()) {
    // States may have moved under the virtual path while the active
    // set was not maintained; rebuild it before fast rounds resume.
    fast_enabled_ = true;
    rebuild_active_set();
    return;
  }
  if (!enabled && plane_pinned_) {
    throw std::logic_error(
        "beeping::engine: the virtual gear is unavailable under "
        "pin_plane_mode");
  }
  if (!enabled && plane_mode_) {
    // The virtual path reads the protocol's vector directly; hand the
    // authority back before leaving plane mode.
    fsm_->ensure_states_fresh();
    plane_mode_ = false;
  }
  fast_enabled_ = enabled;
}

// Dirty-word fold: only words that banked a beep since the last flush
// are visited, so observer rounds on mostly-quiet graphs pay
// O(beeping region), not O(n). Each dirty word's vertical counters are
// transposed back to per-node byte counts with the SWAR spread (8
// groups x up to 8 planes) - paid once per flush, not per round.
void engine::flush_pending_ledger() const {
  if (pending_rounds_ == 0) return;
  const std::size_t n = n_;
  if (beep_counts_.empty()) {
    // Counts untracked (giant mode): drop the banked rounds, keeping
    // the ledger planes and dirty bitset clean for the next bank.
    for (std::size_t d = 0; d < dirty_ledger_words_.size(); ++d) {
      std::uint64_t dirty = dirty_ledger_words_[d];
      dirty_ledger_words_[d] = 0;
      while (dirty != 0) {
        const std::size_t w =
            (d << 6) + static_cast<std::size_t>(std::countr_zero(dirty));
        dirty &= dirty - 1;
        for (std::size_t j = 0; j < 8; ++j) ledger_planes_[j][w] = 0;
      }
    }
    pending_rounds_ = 0;
    return;
  }
  for (std::size_t d = 0; d < dirty_ledger_words_.size(); ++d) {
    std::uint64_t dirty = dirty_ledger_words_[d];
    dirty_ledger_words_[d] = 0;
    while (dirty != 0) {
      const std::size_t w =
          (d << 6) + static_cast<std::size_t>(std::countr_zero(dirty));
      dirty &= dirty - 1;
      const std::size_t base = w << 6;
      const std::size_t end = std::min(n, base + 64);
      for (std::size_t g = 0; base + g < end; g += 8) {
        std::uint64_t bytes = 0;
        for (std::size_t j = 0; j < 8; ++j) {
          const std::uint64_t plane = ledger_planes_[j][w];
          if (plane == 0) continue;
          bytes |= spread_bits_to_bytes((plane >> g) & 0xFF) << j;
        }
        if (bytes == 0) continue;
        const std::size_t limit = std::min<std::size_t>(8, end - base - g);
        for (std::size_t i = 0; i < limit; ++i) {
          beep_counts_[base + g + i] += (bytes >> (i * 8)) & 0xFF;
        }
      }
      for (std::size_t j = 0; j < 8; ++j) ledger_planes_[j][w] = 0;
    }
  }
  pending_rounds_ = 0;
}

// Transposes the state vector into the bit-planes (and snapshots the
// packed leader set); called when a dense round engages the
// word-parallel sweep.
void engine::enter_plane_mode() {
  const std::size_t n = n_;
  const machine_table& table = *table_;
  const state_id* const states = fsm_->raw_states().data();
  for (std::size_t j = 0; j < plane_count_; ++j) {
    std::fill(planes_[j].begin(), planes_[j].end(), 0);
  }
  std::fill(leader_words_.begin(), leader_words_.end(), 0);
  for (std::size_t u = 0; u < n; ++u) {
    const std::uint64_t bit = 1ULL << (u & 63);
    const state_id s = states[u];
    for (std::size_t j = 0; j < plane_count_; ++j) {
      if ((s >> j) & 1U) planes_[j][u >> 6] |= bit;
    }
    if ((table.meta[s] & machine_table::meta_leader) != 0) {
      leader_words_[u >> 6] |= bit;
    }
  }
  plane_mode_ = true;
}

// The lazy unpack behind fsm_protocol::states(): transposes the
// authoritative bit planes back into the uint16 vector (SWAR
// bit-to-byte spread + widening store). This is exactly the write-back
// every plane round used to perform eagerly; now it runs at most once
// per batch of unobserved rounds, on first read.
// Seeds the planes directly from the machine's initial state: every
// lane starts identical, so each plane/flag word is all-ones (masked
// by the tail) or all-zeros. O(words) - the pinned giant path never
// materializes a state vector at all.
void engine::enter_plane_mode_initial() {
  const machine_table& table = *table_;
  const state_id init = fsm_->machine().initial_state();
  const std::size_t words = beep_words_.size();
  const auto fill_all = [&](support::word_buffer& buf) {
    for (std::size_t w = 0; w < words; ++w) {
      buf[w] = (w + 1 == words) ? tail_mask_ : ~0ULL;
    }
  };
  for (std::size_t j = 0; j < plane_count_; ++j) {
    if ((init >> j) & 1U) fill_all(planes_[j]);
  }
  const std::uint8_t meta = table.meta[init];
  if ((meta & machine_table::meta_beep) != 0) {
    fill_all(beep_words_);
    // Bank the round-0 beeps in the ledger so flushes stay exact even
    // when counts are tracked under pinning.
    for (std::size_t w = 0; w < words; ++w) {
      if (beep_words_[w] == 0) continue;
      dirty_ledger_words_[w >> 6] |= 1ULL << (w & 63);
      ledger_planes_[0][w] = beep_words_[w];
    }
    pending_rounds_ = 1;
  }
  if ((meta & machine_table::meta_leader) != 0) {
    fill_all(leader_words_);
    leader_count_ = n_;
  } else {
    leader_count_ = 0;
  }
  if ((meta & machine_table::meta_bot_identity) == 0) {
    fill_all(active_words_);
  }
  beep_flags_valid_ = false;
  plane_mode_ = true;
  fsm_->mark_states_stale();
}

void engine::materialize_states(std::span<state_id> out) {
  const std::size_t n = n_;
  state_id* const states = out.data();
  const std::size_t words = word_count(n);
  const std::size_t p = plane_count_;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    const std::size_t in_word = std::min<std::size_t>(64, n - base);
    std::size_t i = 0;
    for (; i + 8 <= in_word; i += 8) {
      // Merge the planes before the byte reversal: the multiply parks
      // bit k at the top of byte 7-k, so plane j's flags shift down to
      // bit j of each byte and one bswap fixes the order for all
      // planes at once.
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < p; ++j) {
        acc |= ((((planes_[j][w] >> i) & 0xFF) * 0x8040201008040201ULL) &
                0x8080808080808080ULL) >>
               (7 - j);
      }
      const std::uint64_t bytes = __builtin_bswap64(acc);
#if defined(__SSE2__)
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(states + base + i),
          _mm_unpacklo_epi8(_mm_cvtsi64_si128(static_cast<long long>(bytes)),
                            _mm_setzero_si128()));
#else
      const std::uint64_t lo = widen_bytes_to_u16(bytes);
      const std::uint64_t hi = widen_bytes_to_u16(bytes >> 32);
      std::memcpy(states + base + i, &lo, 8);
      std::memcpy(states + base + i + 4, &hi, 8);
#endif
    }
    for (; i < in_word; ++i) {
      state_id s = 0;
      for (std::size_t j = 0; j < p; ++j) {
        s |= static_cast<state_id>(((planes_[j][w] >> i) & 1U) << j);
      }
      states[base + i] = s;
    }
  }
}

void engine::check_in_sync() const {
  if (fsm_ != nullptr && fsm_->config_version() != synced_version_) {
    throw std::logic_error(
        "beeping::engine: protocol configuration was replaced "
        "(fsm_protocol::set_states or reset) without "
        "engine::restart_from_protocol(); the engine's round state is "
        "stale");
  }
}

void engine::ensure_beep_flags() const {
  if (beep_flags_valid_) return;
  const std::size_t n = n_;
  // Giant engines skip the O(n) byte mirror at bind time; size it on
  // the first observer/reference read instead.
  if (beeping_.size() != n) beeping_.assign(n, 0);
  for (graph::node_id u = 0; u < n; ++u) {
    beeping_[u] = test_bit(beep_words_, u) ? 1 : 0;
  }
  beep_flags_valid_ = true;
}

round_view engine::make_view() const {
  ensure_beep_flags();     // observers read the byte flags
  flush_pending_ledger();  // ... and the exact beep counts
  round_view view;
  view.round = round_;
  view.g = view_.explicit_graph();  // null for implicit topologies
  view.proto = proto_;
  view.beeping = beeping_;
  view.beep_counts = beep_counts_;
  view.leader_count = leader_count_;
  return view;
}

void engine::restart_from_protocol() {
  if (plane_pinned_) {
    throw std::logic_error(
        "beeping::engine: restart_from_protocol is unavailable under "
        "pin_plane_mode (the planes are the only state authority)");
  }
  round_ = 0;
  // Per-run introspection restarts with the configuration: plane/kernel
  // round counts, the last-used gather kernel, the telemetry scratch
  // and the crashed set all describe the run that ended here, not the
  // next one. (The topology patch and the adversary hook stay attached
  // - they are configuration, like a forced kernel.)
  plane_rounds_ = 0;
  compiled_rounds_ = 0;
  gather_.reset_last_used();
  metrics_.reset();
  clear_faults();
  std::fill(beep_counts_.begin(), beep_counts_.end(), 0);
  for (auto& lp : ledger_planes_) std::fill(lp.begin(), lp.end(), 0);
  std::fill(dirty_ledger_words_.begin(), dirty_ledger_words_.end(), 0);
  pending_rounds_ = 0;
  refresh_round_state();
  notify_round_observers();
}

void engine::resync_with_protocol() {
  if (plane_pinned_) {
    throw std::logic_error(
        "beeping::engine: resync_with_protocol is unavailable under "
        "pin_plane_mode");
  }
  // Undo the current round's ledger contribution (added by the refresh
  // that entered this round), then recompute all bookkeeping from the
  // protocol's new configuration; the round counter keeps running.
  flush_pending_ledger();  // the contribution may live in the sidecar
  for (std::size_t w = 0; w < beep_words_.size(); ++w) {
    std::uint64_t bits = beep_words_[w];
    while (bits != 0) {
      const auto u = static_cast<graph::node_id>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      --beep_counts_[u];
    }
  }
  refresh_round_state();
  // Corpses stay crashed through an injected configuration; they are
  // re-frozen in whatever the new states say (and re-silenced - the
  // refresh above counted their beeps as if they were alive).
  if (crashed_count_ != 0) refreeze_crashed();
}

// ---- fault-injection surface ---------------------------------------

void engine::require_fault_capable() const {
  if (fsm_ == nullptr || !table_.has_value()) {
    throw std::logic_error(
        "beeping::engine: fault injection requires a compiled "
        "fsm_protocol machine");
  }
  if (plane_pinned_) {
    throw std::logic_error(
        "beeping::engine: fault injection is unavailable under "
        "pin_plane_mode (frozen snapshots would materialize O(n) state)");
  }
}

void engine::ensure_fault_buffers() {
  const std::size_t words = beep_words_.size();
  if (crashed_words_.size() != words) crashed_words_.assign(words, 0);
  if (frozen_states_.size() != n_) frozen_states_.assign(n_, 0);
  if (plane_capable_) {
    for (std::size_t j = 0; j < plane_count_; ++j) {
      if (frozen_planes_[j].size() != words) {
        frozen_planes_[j].assign(words, 0);
      }
    }
    if (frozen_leader_words_.size() != words) {
      frozen_leader_words_.assign(words, 0);
    }
    if (frozen_active_words_.size() != words) {
      frozen_active_words_.assign(words, 0);
    }
  }
}

state_id engine::current_state_of(graph::node_id u) {
  if (plane_mode_) {
    const std::size_t w = u >> 6;
    const std::uint64_t shift = u & 63;
    state_id s = 0;
    for (std::size_t j = 0; j < plane_count_; ++j) {
      s |= static_cast<state_id>(((planes_[j][w] >> shift) & 1ULL) << j);
    }
    return s;
  }
  fsm_->ensure_states_fresh();
  return fsm_->raw_states()[u];
}

void engine::write_lane_state(graph::node_id u, state_id s, bool frozen) {
  const machine_table& table = *table_;
  const std::size_t w = u >> 6;
  const std::uint64_t bit = 1ULL << (u & 63);
  const bool lead = table.leader_flag[s] != 0;
  const bool act = table.bot_identity[s] == 0;
  if (plane_mode_) {
    const state_id prev = current_state_of(u);
    for (std::size_t j = 0; j < plane_count_; ++j) {
      planes_[j][w] =
          (planes_[j][w] & ~bit) | ((((s >> j) & 1U) != 0) ? bit : 0);
    }
    leader_count_ += lead ? 1 : 0;
    leader_count_ -= table.leader_flag[prev];
    leader_words_[w] = (leader_words_[w] & ~bit) | (lead ? bit : 0);
    fsm_->mark_states_stale();
  } else {
    fsm_->ensure_states_fresh();
    state_id* const states = fsm_->raw_states().data();
    leader_count_ += lead ? 1 : 0;
    leader_count_ -= table.leader_flag[states[u]];
    states[u] = s;
  }
  active_words_[w] = (active_words_[w] & ~bit) | (act ? bit : 0);
  if (frozen) {
    frozen_states_[u] = s;
    if (plane_capable_) {
      for (std::size_t j = 0; j < plane_count_; ++j) {
        frozen_planes_[j][w] =
            (frozen_planes_[j][w] & ~bit) | ((((s >> j) & 1U) != 0) ? bit : 0);
      }
      frozen_leader_words_[w] =
          (frozen_leader_words_[w] & ~bit) | (lead ? bit : 0);
      frozen_active_words_[w] =
          (frozen_active_words_[w] & ~bit) | (act ? bit : 0);
    }
  }
}

bool engine::suppress_current_beep(graph::node_id u) {
  const std::size_t w = u >> 6;
  const std::uint64_t bit = 1ULL << (u & 63);
  if ((beep_words_[w] & bit) == 0) return false;
  // The current round's contribution may still sit in the ledger
  // sidecar; fold it into the counts first, then take back exactly one
  // (the resync_with_protocol convention).
  flush_pending_ledger();
  beep_words_[w] &= ~bit;
  if (!beep_counts_.empty()) --beep_counts_[u];
  beep_flags_valid_ = false;
  return true;
}

void engine::crash_with_state(graph::node_id u, state_id s) {
  require_fault_capable();
  check_in_sync();
  if (u >= n_) {
    throw std::invalid_argument("beeping::engine::fault_crash: node out of range");
  }
  if (s >= table_->state_count()) {
    throw std::invalid_argument(
        "beeping::engine::fault_crash: state out of range");
  }
  ensure_fault_buffers();
  const std::size_t w = u >> 6;
  const std::uint64_t bit = 1ULL << (u & 63);
  const bool was_crashed = (crashed_words_[w] & bit) != 0;
  if (was_crashed) {
    crashed_leaders_ -= table_->leader_flag[frozen_states_[u]];
  }
  write_lane_state(u, s, /*frozen=*/true);
  suppress_current_beep(u);
  crashed_words_[w] |= bit;
  if (!was_crashed) ++crashed_count_;
  crashed_leaders_ += table_->leader_flag[s];
  ++metrics_.faults_applied;
  beep_flags_valid_ = false;
}

void engine::fault_crash(graph::node_id u) {
  require_fault_capable();
  if (u >= n_) {
    throw std::invalid_argument("beeping::engine::fault_crash: node out of range");
  }
  if (crashed(u)) return;  // idempotent: already frozen in place
  crash_with_state(u, current_state_of(u));
}

void engine::fault_crash_as(graph::node_id u, state_id s) {
  crash_with_state(u, s);
}

void engine::fault_restart(graph::node_id u) {
  fault_restart_as(u, fsm_ != nullptr ? fsm_->machine().initial_state()
                                      : state_id{0});
}

void engine::fault_restart_as(graph::node_id u, state_id s) {
  require_fault_capable();
  check_in_sync();
  if (u >= n_) {
    throw std::invalid_argument(
        "beeping::engine::fault_restart: node out of range");
  }
  if (s >= table_->state_count()) {
    throw std::invalid_argument(
        "beeping::engine::fault_restart: state out of range");
  }
  if (!crashed(u)) {
    throw std::logic_error(
        "beeping::engine::fault_restart: node is alive (corrupt live "
        "nodes through fsm_protocol::set_states + resync_with_protocol)");
  }
  const std::size_t w = u >> 6;
  const std::uint64_t bit = 1ULL << (u & 63);
  crashed_words_[w] &= ~bit;
  --crashed_count_;
  crashed_leaders_ -= table_->leader_flag[frozen_states_[u]];
  write_lane_state(u, s, /*frozen=*/false);
  // The node re-enters the *current* round's configuration: it beeps
  // this round iff its new state beeps (the crashed lane's bit is
  // guaranteed clear beforehand).
  if (table_->beeps(s)) {
    flush_pending_ledger();
    beep_words_[w] |= bit;
    if (!beep_counts_.empty()) ++beep_counts_[u];
  }
  ++metrics_.faults_applied;
  beep_flags_valid_ = false;
}

void engine::clear_faults() noexcept {
  if (crashed_count_ == 0) return;
  std::fill(crashed_words_.begin(), crashed_words_.end(), 0);
  crashed_count_ = 0;
  crashed_leaders_ = 0;
}

void engine::set_topology_patch(const graph::patch_overlay* patch) {
  if (patch != nullptr && patch->view().node_count() != n_) {
    throw std::invalid_argument(
        "beeping::engine::set_topology_patch: overlay node count mismatch");
  }
  patch_ = patch;
  gather_.set_patch(patch);
}

void engine::mask_crashed_heard() {
  for (std::size_t w = 0; w < crashed_words_.size(); ++w) {
    heard_words_[w] &= ~crashed_words_[w];
  }
}

void engine::fixup_crashed_vector() {
  const machine_table& table = *table_;
  state_id* const states = fsm_->raw_states().data();
  for (std::size_t w = 0; w < crashed_words_.size(); ++w) {
    std::uint64_t c = crashed_words_[w];
    if (c == 0) continue;
    // Silence first: whatever the rolled-back transition beeped is
    // taken back (bit + count), making the corpse's net contribution
    // to this round exactly zero.
    const std::uint64_t bb = beep_words_[w] & c;
    if (bb != 0) {
      beep_words_[w] &= ~bb;
      std::uint64_t bits = bb;
      while (bits != 0) {
        const auto u = static_cast<graph::node_id>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
        --beep_counts_[u];
      }
    }
    while (c != 0) {
      const auto offset = static_cast<std::size_t>(std::countr_zero(c));
      const std::uint64_t bit = c & (~c + 1);
      c &= c - 1;
      const auto u = static_cast<graph::node_id>((w << 6) + offset);
      const state_id frozen = frozen_states_[u];
      const state_id cur = states[u];
      if (cur != frozen) {
        leader_count_ += table.leader_flag[frozen];
        leader_count_ -= table.leader_flag[cur];
        states[u] = frozen;
      }
      active_words_[w] = (active_words_[w] & ~bit) |
                         (table.bot_identity[frozen] == 0 ? bit : 0);
    }
  }
  beep_flags_valid_ = false;
}

void engine::fixup_crashed_plane() {
  for (std::size_t w = 0; w < crashed_words_.size(); ++w) {
    const std::uint64_t c = crashed_words_[w];
    if (c == 0) continue;
    const std::uint64_t bb = beep_words_[w] & c;
    if (bb != 0) {
      beep_words_[w] &= ~bb;
      // Un-bank the sweep's ledger add for these lanes: a ripple-borrow
      // subtract of 1 from each vertical counter (the lane just banked
      // +1, so the counter is >= 1 and the borrow terminates).
      std::uint64_t borrow = bb;
      for (std::size_t j = 0; j < 8 && borrow != 0; ++j) {
        const std::uint64_t old = ledger_planes_[j][w];
        ledger_planes_[j][w] = old ^ borrow;
        borrow &= ~old;
      }
    }
    for (std::size_t j = 0; j < plane_count_; ++j) {
      planes_[j][w] = (planes_[j][w] & ~c) | (frozen_planes_[j][w] & c);
    }
    const std::uint64_t cur_lead = leader_words_[w] & c;
    const std::uint64_t froz_lead = frozen_leader_words_[w] & c;
    if (cur_lead != froz_lead) {
      leader_count_ += static_cast<std::size_t>(std::popcount(froz_lead));
      leader_count_ -= static_cast<std::size_t>(std::popcount(cur_lead));
      leader_words_[w] = (leader_words_[w] & ~c) | froz_lead;
    }
    active_words_[w] = (active_words_[w] & ~c) | (frozen_active_words_[w] & c);
  }
  beep_flags_valid_ = false;
}

void engine::refreeze_crashed() {
  // refresh_round_state just rebuilt all bookkeeping from the new
  // configuration (plane mode is off, states are fresh) - counting
  // crashed lanes as alive; re-snapshot and re-silence them.
  const machine_table& table = *table_;
  const state_id* const states = fsm_->raw_states().data();
  crashed_leaders_ = 0;
  for (std::size_t w = 0; w < crashed_words_.size(); ++w) {
    std::uint64_t c = crashed_words_[w];
    while (c != 0) {
      const std::uint64_t bit = c & (~c + 1);
      const auto u = static_cast<graph::node_id>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(c)));
      c &= c - 1;
      const state_id s = states[u];
      frozen_states_[u] = s;
      crashed_leaders_ += table.leader_flag[s];
      if (plane_capable_) {
        for (std::size_t j = 0; j < plane_count_; ++j) {
          frozen_planes_[j][w] =
              (frozen_planes_[j][w] & ~bit) | ((((s >> j) & 1U) != 0) ? bit : 0);
        }
        frozen_leader_words_[w] = (frozen_leader_words_[w] & ~bit) |
                                  (table.leader_flag[s] != 0 ? bit : 0);
        frozen_active_words_[w] = (frozen_active_words_[w] & ~bit) |
                                  (table.bot_identity[s] == 0 ? bit : 0);
      }
      suppress_current_beep(u);
    }
  }
}

// Reception noise redraws every silent node's verdict from its own
// dedicated stream (exactly one draw per silent node, in node order,
// matching the scalar reference draw for draw). Tiled over word
// ranges: a node's verdict touches only its own word and its own
// dedicated noise stream, so tiles are fully independent and the
// result is bit-identical at every (tile, thread) point.
void engine::apply_noise() {
  const std::size_t n = n_;
  const std::size_t words = heard_words_.size();
  const std::uint64_t* const beep = beep_words_.data();
  std::uint64_t* const heard = heard_words_.data();
  support::rng* const noise = noise_rngs_.data();
  const double miss = noise_.miss;
  const double hallucinate = noise_.hallucinate;
  const auto noise_range = [&](std::size_t /*slot*/, std::size_t wb,
                               std::size_t we) {
    for (std::size_t w = wb; w < we; ++w) {
      const std::size_t base = w << 6;
      const std::size_t limit = n - base < 64 ? n - base : 64;
      const std::uint64_t own = beep[w];
      std::uint64_t hw = heard[w];
      for (std::size_t i = 0; i < limit; ++i) {
        const std::uint64_t mask = 1ULL << i;
        if ((own & mask) != 0) continue;  // own beep is never corrupted
        const bool neighbor_beeped = (hw & mask) != 0;
        const bool h = neighbor_beeped ? !noise[base + i].bernoulli(miss)
                                       : noise[base + i].bernoulli(hallucinate);
        hw = h ? (hw | mask) : (hw & ~mask);
      }
      heard[w] = hw;
    }
  };
  if (exec_) {
    exec_->run_tiles(words, tile_words_, noise_range);
  } else {
    noise_range(0, 0, words);
  }
  namespace tel = support::telemetry;
  if (tel::compiled_in && telemetry_enabled_ && tel::enabled()) {
    if (exec_) {
      ++metrics_.noise_passes_tiled;
    } else {
      ++metrics_.noise_passes_serial;
    }
  }
}

void engine::notify_round_observers() {
  if (observers_.empty()) return;
  const round_view view = make_view();
  for (observer* obs : observers_) {
    obs->on_round(view);
  }
}

// Phase 2 + bookkeeping shared by step() and step_reference(); expects
// heard_words_ to hold the delta_top set for the current round.
void engine::finish_step() {
  const std::size_t n = n_;
  if (fsm_ != nullptr) {
    // Guard-free virtual gear: fsm_protocol::step re-checks the
    // lazy-state guard on every call (~10-15% of a reference round);
    // one freshness check up front buys the whole sweep, which then
    // runs the same per-node virtual delta calls on the raw vector.
    fsm_->ensure_states_fresh();
    const state_machine& machine = fsm_->machine();
    state_id* const states = fsm_->raw_states().data();
    for (graph::node_id u = 0; u < n; ++u) {
      states[u] = test_bit(heard_words_, u)
                      ? machine.delta_top(states[u], rngs_[u])
                      : machine.delta_bot(states[u], rngs_[u]);
    }
  } else {
    for (graph::node_id u = 0; u < n; ++u) {
      proto_->step(u, test_bit(heard_words_, u), rngs_[u]);
    }
  }
  ++round_;
  refresh_round_state();
  // The refresh counted crashed lanes as if alive (their lanes
  // transitioned naturally, keeping the draw sequence gear-identical);
  // roll them back to their frozen snapshots before anyone looks.
  if (crashed_count_ != 0) fixup_crashed_vector();
  notify_round_observers();
}

// Table-driven phase 2 fused with the next round's beep/leader refresh:
// one sweep over heard ∪ active applies the compiled rules to the raw
// state vector and updates all bookkeeping incrementally. Skipped nodes
// (silent, bot row a draw-free self-loop) keep their state, contribute
// no bookkeeping deltas, and - crucially - consume no generator draws,
// so the sweep is draw-for-draw identical to the full virtual loop.
// Tiled over word ranges when enough words carry work: every write
// (states, beep counts, beep/active sets) is word-local, draws come
// from per-node streams, and the leader count folds from per-slot
// deltas - modular arithmetic makes the negative deltas exact.
void engine::finish_step_fast() {
  const machine_table& table = *table_;
  state_id* const states = fsm_->raw_states().data();
  const transition_rule* const rules = table.rules.data();
  const std::uint8_t* const meta = table.meta.data();
  std::uint64_t* const beep_counts = beep_counts_.data();
  const std::uint64_t* const heard = heard_words_.data();
  std::uint64_t* const beep = beep_words_.data();
  std::uint64_t* const active = active_words_.data();
  const std::size_t words = heard_words_.size();
  // Density gate: per-tile claiming costs a fetch_add plus a barrier,
  // which a near-empty sweep (late quiet phase) cannot amortize. Count
  // the populated words first - a read-only scan, so the choice never
  // changes a draw - and fall back to the inline loop below threshold.
  constexpr std::size_t kSparseTiledMinWords = 1024;
  bool tiled = false;
  if (exec_) {
    std::size_t populated = 0;
    for (std::size_t w = 0; w < words; ++w) {
      populated += (heard[w] | active[w]) != 0 ? 1 : 0;
    }
    tiled = populated >= kSparseTiledMinWords;
  }
  // Every current beeper is in the heard set (it hears itself), so the
  // new beep set is rebuilt entirely from visited nodes. Bookkeeping
  // accumulates in locals: the loop stores into std::uint64_t arrays,
  // which would otherwise force the member counters back to memory on
  // every iteration (they may alias under TBAA).
  beep_flags_valid_ = false;
  std::fill(slot_leaders_.begin(), slot_leaders_.end(), 0);
  const auto sweep_range = [&](std::size_t slot, std::size_t wb,
                               std::size_t we) {
    const support::rng_source rngs = rngs_.source(slot);
    // Net leader delta for this range; decrements wrap mod 2^64, and
    // the fold below re-adds every slot's delta, so the sum is exact.
    std::size_t leaders = 0;
    for (std::size_t w = wb; w < we; ++w) {
      const std::uint64_t heard_bits = heard[w];
      std::uint64_t bits = heard_bits | active[w];
      std::uint64_t beep_bits = 0;
      std::uint64_t active_bits = active[w];
      while (bits != 0) {
        const auto offset = static_cast<std::size_t>(std::countr_zero(bits));
        const std::uint64_t mask = bits & (~bits + 1);
        bits &= bits - 1;
        const auto u = static_cast<graph::node_id>((w << 6) + offset);
        const state_id s = states[u];
        const transition_rule& rule =
            rules[(static_cast<std::size_t>(s) << 1) |
                  ((heard_bits & mask) != 0 ? 1U : 0U)];
        const state_id next = apply_rule(rule, rngs[u]);
        states[u] = next;
        // Branchless bookkeeping: wave fronts make beep/identity
        // branches unpredictable, so fold the flag bits arithmetically.
        const std::uint64_t next_meta = meta[next];
        const std::uint64_t is_beep = next_meta & machine_table::meta_beep;
        leaders += (next_meta >> 1) & 1U;
        leaders -= (meta[s] >> 1) & 1U;
        beep_counts[u] += is_beep;
        beep_bits |= mask & (0 - is_beep);
        active_bits =
            (active_bits | mask) ^ (mask & (0 - ((next_meta >> 2) & 1U)));
      }
      beep[w] = beep_bits;
      active[w] = active_bits;
    }
    slot_leaders_[slot] += leaders;
  };
  if (tiled) {
    exec_->run_tiles(words, tile_words_, sweep_range);
    rngs_.sync_all();
  } else {
    sweep_range(0, 0, words);
  }
  std::size_t leaders = leader_count_;
  for (std::size_t s = 0; s < slot_leaders_.size(); ++s) {
    leaders += slot_leaders_[s];
  }
  leader_count_ = leaders;
  namespace tel = support::telemetry;
  if (tel::compiled_in && telemetry_enabled_ && tel::enabled()) {
    if (tiled) {
      ++metrics_.sparse_rounds_tiled;
    } else {
      ++metrics_.sparse_rounds_serial;
    }
  }
  if (crashed_count_ != 0) fixup_crashed_vector();
  ++round_;
  notify_round_observers();
}

// Word-parallel phase 2 for machines with <= 64 states: per word,
// decode a membership mask for every state, split it by the heard
// plane, and route each part to its successor's mask with pure word
// ops. Bit-sliced-counter runs (Timeout-BFW patience) bypass per-state
// decoding: one range comparison finds the run members and one
// ripple-carry add over the planes advances all silent ones at once.
// Words whose lanes are all silent and sitting in draw-free self-loops
// are skipped wholesale (their beep word is provably 0 and their
// states, leader lanes and active lanes are unchanged). Only
// stochastic rules visit nodes individually - their parts are iterated
// jointly in ascending node order, so the per-node generator draws are
// exactly those of the scalar loop. The new planes, beep set, leader
// count and ledger all fall out of the per-successor masks, and the
// protocol's state vector is rewritten through a SWAR transpose so
// outside readers never see stale states.
// Dispatch to a plane-count-specialized instantiation: the inner loops
// over the planes then unroll and the per-word plane words live in
// registers (a runtime plane count costs ~40% on wave-saturated
// rounds).
void engine::finish_step_plane() {
  if (compiled_kernel_ != nullptr && compiled_enabled_) {
    return finish_step_plane_compiled();
  }
  switch (plane_count_) {
    case 1:
      return finish_step_plane_impl<1>();
    case 2:
      return finish_step_plane_impl<2>();
    case 3:
      return finish_step_plane_impl<3>();
    case 4:
      return finish_step_plane_impl<4>();
    case 5:
      return finish_step_plane_impl<5>();
    default:
      return finish_step_plane_impl<6>();
  }
}

template <std::size_t P>
void engine::finish_step_plane_impl() {
  const machine_table& table = *table_;
  const std::size_t q = table.state_count();
  const std::size_t n = n_;
  const std::size_t words = heard_words_.size();
  const std::uint64_t* const heard = heard_words_.data();
  std::uint64_t* const beep = beep_words_.data();
  std::uint64_t* const active = active_words_.data();
  std::uint64_t* const leader = leader_words_.data();
  std::uint64_t* plane[P];
  for (std::size_t j = 0; j < P; ++j) plane[j] = planes_[j].data();
  std::uint64_t* ledger[8];
  for (std::size_t j = 0; j < 8; ++j) ledger[j] = ledger_planes_[j].data();
  beep_flags_valid_ = false;
  // Tiled sweep: every word's update is independent (per-word planes,
  // per-node generator streams), so tiles of consecutive words run on
  // any worker; leader/active counts and dirty-ledger bits accumulate
  // per slot and are folded after the barrier (sums and ORs - order
  // never matters). Serial execution is the one-tile special case.
  std::fill(slot_leaders_.begin(), slot_leaders_.end(), 0);
  std::fill(slot_active_.begin(), slot_active_.end(), 0);
  const auto sweep_range = [&](std::size_t slot, std::size_t wb,
                               std::size_t we) {
  // Slot-local generator source: in lazy-cursor mode each slot owns a
  // scratch generator, so concurrent tiles never share mutable state
  // (post-barrier sync_all writes the cursors back).
  const support::rng_source rngs = rngs_.source(slot);
  std::uint64_t* const dirty = slot_dirty_[slot].data();
  std::size_t leaders = 0;
  std::size_t active_next = 0;
  for (std::size_t w = wb; w < we; ++w) {
    const std::uint64_t valid = (w + 1 == words) ? tail_mask_ : ~0ULL;
    const std::uint64_t h = heard[w];
    const std::uint64_t act = active[w];
    if (((h | act) & valid) == 0) {
      // Fully quiet word: every lane is silent (so beep[w] is already
      // 0 - a beeper always hears itself) and sits in a draw-free bot
      // self-loop. Nothing moves, beeps, or draws; the stored leader
      // and active lanes still count.
      leaders += static_cast<std::size_t>(std::popcount(leader[w]));
      active_next += static_cast<std::size_t>(std::popcount(act));
      continue;
    }
    std::uint64_t b[P];
    for (std::size_t j = 0; j < P; ++j) b[j] = plane[j][w];
    std::uint64_t moved[64];  // moved[t]: nodes whose successor is t
    for (std::size_t t = 0; t < q; ++t) moved[t] = 0;
    // Stochastic parts are deferred so their draws happen jointly in
    // ascending node order, interleaved exactly as the scalar loop.
    struct pending_draw {
      const transition_rule* rule;
      std::uint64_t part;
    };
    std::array<pending_draw, 128> draws;  // <= 2 per state + 1 per run
    std::size_t draw_rules = 0;
    std::uint64_t draw_union = 0;
    // Bit-sliced comparison of the plane-encoded state ids against a
    // constant: gt/eq masks accumulated from the highest plane down.
    const auto compare = [&b, valid](std::uint64_t k, std::uint64_t& gt,
                                     std::uint64_t& eq) noexcept {
      gt = 0;
      eq = valid;
      for (std::size_t j = P; j-- > 0;) {
        if ((k >> j) & 1U) {
          eq &= b[j];
        } else {
          gt |= eq & b[j];
          eq &= ~b[j];
        }
      }
    };
    std::uint64_t chain_np[P] = {};
    std::uint64_t chain_members = 0;
    std::uint64_t chain_beep = 0;
    std::uint64_t chain_leader = 0;
    std::uint64_t chain_active = 0;
    for (const plane_chain& chain : plane_chains_) {
      std::uint64_t gt_last = 0;
      std::uint64_t eq_last = 0;
      compare(chain.last, gt_last, eq_last);
      std::uint64_t ge_first = valid;
      if (chain.first != 0) {
        std::uint64_t gt_before = 0;
        std::uint64_t eq_before = 0;
        compare(static_cast<std::uint64_t>(chain.first) - 1, gt_before,
                eq_before);
        ge_first = gt_before;
      }
      const std::uint64_t members = ge_first & ~gt_last;
      if (members == 0) continue;
      chain_members |= members;
      const std::uint64_t top_part = members & h;
      if (top_part != 0) moved[chain.top_next] |= top_part;
      // The run's last state exits the counter; its silent transition
      // is routed individually (it may even draw).
      const std::uint64_t last_bot = eq_last & ~h;
      if (last_bot != 0) {
        const transition_rule& rule = table.rule(chain.last, false);
        if (rule.draw == transition_rule::draw_kind::none) {
          moved[rule.next] |= last_bot;
        } else {
          draws[draw_rules++] = {&rule, last_bot};
          draw_union |= last_bot;
        }
      }
      // Every other silent member ticks its counter: state id += 1 is
      // a ripple-carry add over the planes, restricted to those lanes.
      const std::uint64_t inc = members & ~eq_last & ~h;
      if (inc != 0) {
        std::uint64_t carry = inc;
        for (std::size_t j = 0; j < P; ++j) {
          chain_np[j] |= (b[j] ^ carry) & inc;
          carry &= b[j];
        }
        if ((chain.meta & machine_table::meta_beep) != 0) chain_beep |= inc;
        if ((chain.meta & machine_table::meta_leader) != 0) {
          chain_leader |= inc;
        }
        if ((chain.meta & machine_table::meta_bot_identity) == 0) {
          chain_active |= inc;
        }
      }
    }
    // Decode states in descending id order with a remaining-lanes mask:
    // once every lane of the word is accounted for, the loop exits -
    // wave-phase words typically hold only the 2-3 highest follower
    // states, so the leader states are usually never decoded. State
    // iteration order is free: the routed parts are disjoint and the
    // draw loop below visits nodes in ascending order regardless.
    std::uint64_t rem = valid & ~chain_members;
    for (std::size_t s = q; s-- > 0;) {
      if (rem == 0) break;
      if (plane_chain_member_[s] != 0) continue;  // handled above
      std::uint64_t dec = rem;
      for (std::size_t j = 0; j < P; ++j) {
        dec &= ((s >> j) & 1U) ? b[j] : ~b[j];
      }
      if (dec == 0) continue;
      rem &= ~dec;
      const transition_rule& top = table.rule(static_cast<state_id>(s), true);
      const transition_rule& bot = table.rule(static_cast<state_id>(s), false);
      const std::uint64_t top_part = dec & h;
      const std::uint64_t bot_part = dec & ~h;
      if (top_part != 0) {
        if (top.draw == transition_rule::draw_kind::none) {
          moved[top.next] |= top_part;
        } else {
          draws[draw_rules++] = {&top, top_part};
          draw_union |= top_part;
        }
      }
      if (bot_part != 0) {
        if (bot.draw == transition_rule::draw_kind::none) {
          moved[bot.next] |= bot_part;
        } else {
          draws[draw_rules++] = {&bot, bot_part};
          draw_union |= bot_part;
        }
      }
    }
    while (draw_union != 0) {
      const auto offset = static_cast<std::size_t>(std::countr_zero(draw_union));
      const std::uint64_t mask = draw_union & (~draw_union + 1);
      draw_union &= draw_union - 1;
      const auto u = static_cast<graph::node_id>((w << 6) + offset);
      for (std::size_t i = 0; i < draw_rules; ++i) {
        if ((draws[i].part & mask) != 0) {
          moved[apply_rule(*draws[i].rule, rngs[u])] |= mask;
          break;
        }
      }
    }
    std::uint64_t np[P];
    for (std::size_t j = 0; j < P; ++j) np[j] = chain_np[j];
    std::uint64_t beep_bits = chain_beep;
    std::uint64_t leader_bits = chain_leader;
    std::uint64_t active_bits = chain_active;
    for (std::size_t t = 0; t < q; ++t) {
      const std::uint64_t m = moved[t];
      if (m == 0) continue;
      for (std::size_t j = 0; j < P; ++j) {
        if ((t >> j) & 1U) np[j] |= m;
      }
      const std::uint8_t t_meta = table.meta[t];
      if ((t_meta & machine_table::meta_beep) != 0) beep_bits |= m;
      if ((t_meta & machine_table::meta_leader) != 0) leader_bits |= m;
      if ((t_meta & machine_table::meta_bot_identity) == 0) active_bits |= m;
    }
    for (std::size_t j = 0; j < P; ++j) plane[j][w] = np[j];
    beep[w] = beep_bits;
    leader[w] = leader_bits;
    active[w] = active_bits;
    leaders += static_cast<std::size_t>(std::popcount(leader_bits));
    active_next += static_cast<std::size_t>(std::popcount(active_bits));
    // Ledger: bank this round's +1s with one ripple-carry add into the
    // vertical counters (counts stay < 255: flushed in time), and mark
    // the word dirty (in the slot's scratch bitset - tiles may share a
    // dirty word) so the flush visits only beeping regions.
    if (beep_bits != 0) {
      dirty[w >> 6] |= 1ULL << (w & 63);
      std::uint64_t carry = beep_bits;
      for (std::size_t j = 0; carry != 0; ++j) {
        const std::uint64_t old = ledger[j][w];
        ledger[j][w] = old ^ carry;
        carry &= old;
      }
    }
    // No state write-back: the planes stay authoritative and the
    // protocol's vector is unpacked lazily on first outside read
    // (materialize_states).
  }
  slot_leaders_[slot] += leaders;
  slot_active_[slot] += active_next;
  };
  if (exec_) {
    exec_->run_tiles(words, tile_words_, sweep_range);
    // Tile->slot assignment is dynamic, so a stream's cursor may sit
    // cached in any slot's scratch generator; flush them all before
    // the next round (or a checkpoint) reads streams. No-op in dense
    // mode.
    rngs_.sync_all();
  } else {
    sweep_range(0, 0, words);
  }
  std::size_t leaders = 0;
  std::size_t active_next = 0;
  for (std::size_t s = 0; s < slot_leaders_.size(); ++s) {
    leaders += slot_leaders_[s];
    active_next += slot_active_[s];
  }
  for (auto& dirty : slot_dirty_) {
    for (std::size_t d = 0; d < dirty.size(); ++d) {
      dirty_ledger_words_[d] |= dirty[d];
      dirty[d] = 0;
    }
  }
  leader_count_ = leaders;
  if (crashed_count_ != 0) fixup_crashed_plane();
  fsm_->mark_states_stale();
  ++round_;
  ++plane_rounds_;
  if (++pending_rounds_ >= 254) flush_pending_ledger();
  // Hysteresis: when the wave traffic dies down, hand the next rounds
  // back to the sparse sweep - which reads the protocol's vector, so
  // the authority moves back with one unpack here (the active set is
  // maintained in plane rounds, so no rebuild is needed on the way
  // out). Pinned engines never leave: the sparse gear would need the
  // O(n) state vector the giant path refuses to materialize.
  if (!plane_pinned_ && active_next * 8 < n) {
    plane_mode_ = false;
    fsm_->ensure_states_fresh();
  }
  notify_round_observers();
}

void engine::set_compiled_width(std::size_t width) {
  if (width != 1 && width != 2 && width != 4 && width != 8) {
    throw std::invalid_argument(
        "beeping::engine::set_compiled_width: width must be 1, 2, 4 or 8");
  }
  compiled_width_ = width;
}

// The beepc-compiled plane round: same tiling, bookkeeping and epilogue
// as finish_step_plane_impl, with the per-word sweep delegated to the
// matched kernel's width-selected entry point. Required bit-identical
// to the interpreted sweep (the differential tests enforce it per
// width).
void engine::finish_step_plane_compiled() {
  const std::size_t n = n_;
  const std::size_t words = heard_words_.size();
  std::uint64_t* plane_ptrs[6] = {};
  for (std::size_t j = 0; j < plane_count_; ++j) {
    plane_ptrs[j] = planes_[j].data();
  }
  std::uint64_t* ledger_ptrs[8];
  for (std::size_t j = 0; j < 8; ++j) ledger_ptrs[j] = ledger_planes_[j].data();
  plane_ctx ctx;
  ctx.heard = heard_words_.data();
  ctx.beep = beep_words_.data();
  ctx.active = active_words_.data();
  ctx.leader = leader_words_.data();
  ctx.planes = plane_ptrs;
  ctx.ledger = ledger_ptrs;
  ctx.rngs = rngs_.source();
  ctx.rules = table_->rules.data();
  ctx.tail_mask = tail_mask_;
  ctx.words = words;
  const sweep_fn sweep =
      compiled_kernel_->sweep[kernel_width_slot(compiled_width_)];
  beep_flags_valid_ = false;
  std::fill(slot_leaders_.begin(), slot_leaders_.end(), 0);
  std::fill(slot_active_.begin(), slot_active_.end(), 0);
  const auto sweep_range = [&](std::size_t slot, std::size_t wb,
                               std::size_t we) {
    // Per-tile ctx copy with a slot-local generator source (lazy-mode
    // scratch generators must not be shared across concurrent tiles).
    plane_ctx tile_ctx = ctx;
    tile_ctx.rngs = rngs_.source(slot);
    const sweep_result part = sweep(tile_ctx, slot_dirty_[slot].data(), wb, we);
    slot_leaders_[slot] += part.leaders;
    slot_active_[slot] += part.active;
  };
  if (exec_) {
    exec_->run_tiles(words, tile_words_, sweep_range);
    rngs_.sync_all();  // flush slot-cached cursors (no-op in dense mode)
  } else {
    sweep_range(0, 0, words);
  }
  std::size_t leaders = 0;
  std::size_t active_next = 0;
  for (std::size_t s = 0; s < slot_leaders_.size(); ++s) {
    leaders += slot_leaders_[s];
    active_next += slot_active_[s];
  }
  for (auto& dirty : slot_dirty_) {
    for (std::size_t d = 0; d < dirty.size(); ++d) {
      dirty_ledger_words_[d] |= dirty[d];
      dirty[d] = 0;
    }
  }
  leader_count_ = leaders;
  if (crashed_count_ != 0) fixup_crashed_plane();
  fsm_->mark_states_stale();
  ++round_;
  ++plane_rounds_;
  ++compiled_rounds_;
  if (++pending_rounds_ >= 254) flush_pending_ledger();
  if (!plane_pinned_ && active_next * 8 < n) {
    plane_mode_ = false;
    fsm_->ensure_states_fresh();
  }
  notify_round_observers();
}

void engine::step() {
  check_in_sync();
  // Telemetry probes: counter bumps every round when enabled, clock
  // reads / quiet-word scans / trace spans only on sampled rounds.
  // Probes never touch the RNG streams or the sweep's iteration order
  // (the differential tests pin probes-on == probes-off draw for draw),
  // and tel_on is constant-false when BEEPKIT_TELEMETRY is OFF, so the
  // whole block folds away.
  namespace tel = support::telemetry;
  const bool tel_on = tel::compiled_in && telemetry_enabled_ && tel::enabled();
  const bool sampled = tel_on && tel::round_sampled(round_);
  const std::uint64_t probe_start = sampled ? tel::now_ns() : 0;
  const bool was_plane = plane_mode_;
  // Phase 1: a node applies delta_top iff it beeped or a neighbor did.
  // Seed the heard set with the beep set (a beeper always "hears"),
  // then let the gather dispatch pick its kernel: stencil on tagged
  // topologies, otherwise word-CSR push vs packed pull by beep density
  // (with hysteresis). Every kernel computes the same set, so the
  // choice never affects results.
  std::copy(beep_words_.begin(), beep_words_.end(), heard_words_.begin());
  gather_(beep_words_, heard_words_);
  if (noise_.enabled()) {
    apply_noise();
  }
  // Fault stack, in fixed order: the adversary gets the final say on
  // perception (after noise), then crashed nodes are masked deaf -
  // the hook cannot wake the dead.
  if (heard_hook_) heard_hook_(round_, beep_words_, heard_words_);
  if (crashed_count_ != 0) mask_crashed_heard();
  if (tel_on && patch_ != nullptr) {
    metrics_.fault_patched_words += patch_->patched_words();
  }
  // Phase 2: simultaneous transitions (the heard set is frozen above).
  if (fast_path_active()) {
    if (plane_capable_ && !plane_mode_) {
      // Engage the word-parallel sweep when the visited set is dense:
      // per-node iteration overhead then exceeds whole-word routing.
      std::size_t processed = 0;
      for (std::size_t w = 0; w < heard_words_.size(); ++w) {
        processed += static_cast<std::size_t>(
            std::popcount(heard_words_[w] | active_words_[w]));
      }
      if (processed * 4 >= n_) {
        enter_plane_mode();
        if (tel_on) ++metrics_.plane_entries;
      }
    }
    if (sampled) {
      // Quiet-word rate: the words the plane sweep would skip wholesale
      // (no heard or active lane). A read-only scan of already-computed
      // sets - same answer on every gear.
      const std::size_t words = heard_words_.size();
      std::uint64_t quiet = 0;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t valid = (w + 1 == words) ? tail_mask_ : ~0ULL;
        if (((heard_words_[w] | active_words_[w]) & valid) == 0) ++quiet;
      }
      metrics_.quiet_words += quiet;
      metrics_.scanned_words += words;
    }
    if (plane_mode_) {
      if (tel_on) {
        if (compiled_kernel_active()) {
          ++metrics_.rounds_plane_compiled;
        } else {
          ++metrics_.rounds_plane_interpreted;
        }
      }
      finish_step_plane();
    } else {
      if (tel_on) ++metrics_.rounds_sparse;
      finish_step_fast();
    }
  } else {
    if (tel_on) ++metrics_.rounds_virtual;
    finish_step();
  }
  if (tel_on && was_plane && !plane_mode_) ++metrics_.plane_exits;
  if (sampled) {
    const std::uint64_t dur = tel::now_ns() - probe_start;
    metrics_.round_ns.record(dur);
    ++metrics_.sampled_rounds;
    if (tel::trace_enabled()) {
      tel::trace_complete("round", "engine", probe_start, dur);
    }
  }
}

void engine::step_reference() {
  check_in_sync();
  const std::size_t n = n_;
  // The original scalar loop, kept verbatim in behavior: per-node
  // neighbor scan over byte flags, writing the packed heard set.
  ensure_beep_flags();
  const graph::graph* const g = view_.explicit_graph();
  std::fill(heard_words_.begin(), heard_words_.end(), 0);
  for (graph::node_id u = 0; u < n; ++u) {
    bool heard = beeping_[u] != 0;
    if (!heard) {
      bool neighbor_beeped = false;
      if (patch_ != nullptr && patch_->touched(u)) {
        // Churned neighborhood: the overlay's effective neighbor list
        // replaces the base scan (matches gather + fix_heard exactly).
        patch_->for_each_neighbor(u, [&](graph::node_id v) {
          if (beeping_[v] != 0) neighbor_beeped = true;
        });
      } else if (g != nullptr) {
        for (graph::node_id v : g->neighbors(u)) {
          if (beeping_[v] != 0) {
            neighbor_beeped = true;
            break;
          }
        }
      } else {
        graph::node_id nb[4];
        const std::size_t deg = view_.implicit_neighbors(u, nb);
        for (std::size_t i = 0; i < deg; ++i) {
          if (beeping_[nb[i]] != 0) {
            neighbor_beeped = true;
            break;
          }
        }
      }
      heard = neighbor_beeped;
      if (noise_.enabled()) {
        // Reception noise: erase a real beep or hallucinate one. A
        // node's own beep is never affected (it knows its state).
        if (neighbor_beeped) {
          heard = !noise_rngs_[u].bernoulli(noise_.miss);
        } else {
          heard = noise_rngs_[u].bernoulli(noise_.hallucinate);
        }
      }
    }
    if (heard) set_bit(heard_words_, u);
  }
  // Same fault-stack order as step(): adversary hook, then the crash
  // deafness mask.
  if (heard_hook_) heard_hook_(round_, beep_words_, heard_words_);
  if (crashed_count_ != 0) mask_crashed_heard();
  finish_step();
}

run_result engine::run_until_single_leader(std::uint64_t max_rounds) {
  check_in_sync();
  while (round_ < max_rounds) {
    // Both absorbing cases stop the run for leader-monotone protocols;
    // only exactly-one-alive-leader counts as a successful election (a
    // leader frozen inside the crashed set leads nobody; with no
    // faults alive == total, the historical predicate).
    if (alive_leader_count() <= 1) break;
    step();
  }
  return {round_, alive_leader_count() == 1, alive_leader_count()};
}

void engine::run_rounds(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    step();
  }
}

graph::node_id engine::sole_leader() const {
  if (leader_count_ != 1) {
    return static_cast<graph::node_id>(n_);
  }
  if (plane_mode_) {
    // The packed leader set is authoritative in plane rounds; scanning
    // it avoids materializing the O(n) state vector (essential for
    // pinned giant engines, a free speedup otherwise).
    for (std::size_t w = 0; w < leader_words_.size(); ++w) {
      if (leader_words_[w] != 0) {
        return static_cast<graph::node_id>(
            (w << 6) + static_cast<std::size_t>(
                           std::countr_zero(leader_words_[w])));
      }
    }
    return static_cast<graph::node_id>(n_);
  }
  for (graph::node_id u = 0; u < n_; ++u) {
    if (proto_->is_leader(u)) return u;
  }
  return static_cast<graph::node_id>(n_);
}

support::telemetry::engine_metrics engine::telemetry_metrics() const {
  support::telemetry::engine_metrics m = metrics_;
  if (fsm_ != nullptr) m.materializations = fsm_->materialization_count();
  if (exec_) {
    const auto claims = exec_->claim_counts();
    std::uint64_t max_words = 0;
    for (const auto& c : claims) {
      m.tile_claims += c.tiles;
      m.tile_claimed_words += c.words;
      max_words = std::max(max_words, c.words);
    }
    if (m.tile_claimed_words != 0) {
      const double mean = static_cast<double>(m.tile_claimed_words) /
                          static_cast<double>(claims.size());
      m.tile_imbalance = static_cast<double>(max_words) / mean;
    }
  }
  return m;
}

std::uint64_t engine::total_coins_consumed() const noexcept {
  return rngs_.total_coins();
}

engine::plane_state engine::plane_snapshot() {
  if (!plane_mode_) {
    throw std::logic_error(
        "beeping::engine::plane_snapshot: the planes are only "
        "authoritative in plane mode");
  }
  plane_state st;
  st.plane_count = plane_count_;
  for (std::size_t j = 0; j < plane_count_; ++j) {
    st.planes[j] = {planes_[j].data(), planes_[j].size()};
  }
  st.beep = {beep_words_.data(), beep_words_.size()};
  st.active = {active_words_.data(), active_words_.size()};
  st.leader = {leader_words_.data(), leader_words_.size()};
  for (std::size_t j = 0; j < 8; ++j) {
    st.ledger[j] = {ledger_planes_[j].data(), ledger_planes_[j].size()};
  }
  st.dirty = {dirty_ledger_words_.data(), dirty_ledger_words_.size()};
  st.round = round_;
  st.leaders = leader_count_;
  st.pending_rounds = pending_rounds_;
  return st;
}

void engine::adopt_plane_state(std::uint64_t round, std::size_t leaders,
                               std::uint32_t pending_rounds) {
  if (!plane_mode_) {
    throw std::logic_error(
        "beeping::engine::adopt_plane_state: requires plane mode "
        "(bind with engine_config::giant)");
  }
  round_ = round;
  leader_count_ = leaders;
  pending_rounds_ = pending_rounds;
  beep_flags_valid_ = false;
  if (fsm_ != nullptr) fsm_->mark_states_stale();
}

}  // namespace beepkit::beeping
