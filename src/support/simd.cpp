#include "support/simd.hpp"

#include <chrono>
#include <vector>

namespace beepkit::support::simd {

namespace {

// A representative slice of the compiled plane sweep: per vector of
// words, decode a membership mask from three planes, split it by the
// heard vector, ripple-carry one add across the planes and fold the
// result back. The op mix (AND/ANDNOT/XOR chains with a serial carry
// dependency) is what distinguishes the widths in the real kernels -
// pure streaming bandwidth would always favor the widest vector.
template <std::size_t W>
std::uint64_t probe_pass(const std::uint64_t* heard, std::uint64_t* p0,
                         std::uint64_t* p1, std::uint64_t* p2,
                         std::size_t words) noexcept {
  using vec = wordvec<W>;
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w + W <= words; w += W) {
    const vec h = vec::load(heard + w);
    vec b0 = vec::load(p0 + w);
    vec b1 = vec::load(p1 + w);
    vec b2 = vec::load(p2 + w);
    const vec members = andnot(b0 & b1, b2);
    const vec top = members & h;
    const vec inc = andnot(members, h);
    vec carry = inc;
    vec t = (b0 ^ carry) & inc;
    carry &= b0;
    b0 = andnot(b0, inc) | t;
    t = (b1 ^ carry) & inc;
    carry &= b1;
    b1 = andnot(b1, inc) | t;
    t = (b2 ^ carry) & inc;
    b2 = andnot(b2, inc) | t;
    b0 |= top;
    b1 ^= top;
    b0.store(p0 + w);
    b1.store(p1 + w);
    b2.store(p2 + w);
    for (std::size_t i = 0; i < W; ++i) acc += b2.lane(i);
  }
  return acc;
}

std::size_t run_probe() {
  constexpr std::size_t kWords = 1u << 12;  // 256 KiB working set
  constexpr int kReps = 4;
  std::vector<std::uint64_t> heard(kWords), p0(kWords), p1(kWords), p2(kWords);
  // Deterministic pseudo-random fill (splitmix-style) so the decode
  // masks are non-degenerate; the actual values are irrelevant.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto next = [&x]() noexcept {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return z ^ (z >> 31);
  };
  for (std::size_t w = 0; w < kWords; ++w) {
    heard[w] = next();
    p0[w] = next();
    p1[w] = next();
    p2[w] = next();
  }
  using clock = std::chrono::steady_clock;
  std::uint64_t sink = 0;
  const auto time_width = [&](auto width_tag) {
    constexpr std::size_t W = decltype(width_tag)::value;
    // Warm-up pass (page faults, icache), then best-of-kReps.
    sink += probe_pass<W>(heard.data(), p0.data(), p1.data(), p2.data(),
                          kWords);
    auto best = clock::duration::max();
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = clock::now();
      sink += probe_pass<W>(heard.data(), p0.data(), p1.data(), p2.data(),
                            kWords);
      const auto dt = clock::now() - t0;
      if (dt < best) best = dt;
    }
    return best;
  };
  const clock::duration times[4] = {
      time_width(std::integral_constant<std::size_t, 1>{}),
      time_width(std::integral_constant<std::size_t, 2>{}),
      time_width(std::integral_constant<std::size_t, 4>{}),
      time_width(std::integral_constant<std::size_t, 8>{}),
  };
  constexpr std::size_t widths[4] = {1, 2, 4, 8};
  // Ties (and near-ties within 2%) break toward the compile-time
  // preference, which the probe must beat to override.
  std::size_t best = preferred_width();
  auto best_time = times[preferred_width() == 8   ? 3
                         : preferred_width() == 4 ? 2
                         : preferred_width() == 2 ? 1
                                                  : 0];
  for (std::size_t i = 0; i < 4; ++i) {
    if (times[i].count() * 100 < best_time.count() * 98) {
      best = widths[i];
      best_time = times[i];
    }
  }
  // The sink keeps the optimizer honest without affecting the result.
  if (sink == 0x5eed5eed5eed5eedULL) return 1;
  return best;
}

}  // namespace

std::size_t autotuned_width() noexcept {
  static const std::size_t width = run_probe();
  return width;
}

}  // namespace beepkit::support::simd
