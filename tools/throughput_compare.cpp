// Compares two google-benchmark JSON reports (a blessed baseline and a
// fresh engine_throughput run) benchmark by benchmark and prints a
// rounds/sec delta table, so CI can attach a non-blocking performance
// report to every PR instead of just publishing an artifact.
//
//   throughput_compare baseline.json current.json
//       [--threshold 0.30]   flag regressions worse than this fraction
//       [--strict]           exit 1 when a flagged regression exists
//       [--block-catastrophic]
//                            exit 1 only for catastrophic regressions
//       [--catastrophic 0.50]
//                            the catastrophic fraction
//       [--csv out.csv]      also write the table as CSV
//       [--scaling report.json]
//                            append the advisory multi-core scaling
//                            section from a tools/scaling_report JSON
//
// Exit code is 0 unless --strict is given and a benchmark regressed
// beyond the threshold: absolute rounds/sec depend on the machine (a
// CI runner will not reproduce the blessed numbers exactly), so the
// report is advisory by default and the per-file fast/virtual ratios
// are the machine-independent signal.
//
// --block-catastrophic is the middle ground CI uses: the delta table
// stays advisory at --threshold, but a benchmark losing more than the
// catastrophic fraction (default 0.50, i.e. less than half the blessed
// rate - beyond any plausible runner-hardware noise) fails the run.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using beepkit::support::json;

struct bench_rate {
  std::string name;
  double items_per_second = 0.0;
};

std::optional<std::vector<bench_rate>> load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "throughput_compare: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = json::parse(buffer.str());
  if (!doc.has_value()) {
    std::fprintf(stderr, "throughput_compare: %s is not valid JSON\n",
                 path.c_str());
    return std::nullopt;
  }
  const json* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    std::fprintf(stderr,
                 "throughput_compare: %s has no \"benchmarks\" array (is it "
                 "a --benchmark_out_format=json report?)\n",
                 path.c_str());
    return std::nullopt;
  }
  std::vector<bench_rate> rates;
  for (const json& entry : benchmarks->as_array()) {
    const json* name = entry.find("name");
    const json* rate = entry.find("items_per_second");
    // Aggregate rows (mean/median/stddev) carry a run_type of
    // "aggregate"; plain iterations are what the baseline stores.
    const json* run_type = entry.find("run_type");
    if (name == nullptr || rate == nullptr) continue;
    if (run_type != nullptr && run_type->as_string() == "aggregate") continue;
    rates.push_back({name->as_string(), rate->as_double()});
  }
  return rates;
}

const bench_rate* find_rate(const std::vector<bench_rate>& rates,
                            const std::string& name) {
  for (const bench_rate& r : rates) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string format_rate(double rate) {
  std::ostringstream out;
  out.precision(4);
  if (rate >= 1e6) {
    out << rate / 1e6 << "M/s";
  } else {
    out << rate << "/s";
  }
  return out.str();
}

/// Advisory multi-core scaling section: renders a tools/scaling_report
/// JSON (XL rows at 1/2/4/8 threads) as a speedup table. Speedups are
/// within-run ratios (same binary, same runner), i.e. the
/// machine-independent signal; never affects the exit code. Returns
/// false only when the file cannot be parsed.
bool print_scaling_section(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "throughput_compare: cannot open --scaling %s\n",
                 path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = json::parse(buffer.str());
  const json* rows = doc.has_value() ? doc->find("rows") : nullptr;
  if (rows == nullptr || !rows->is_array()) {
    std::fprintf(stderr,
                 "throughput_compare: %s is not a scaling_report JSON "
                 "(no \"rows\" array)\n",
                 path.c_str());
    return false;
  }
  beepkit::support::table table(
      {"row", "threads", "tile", "node-rounds/s", "speedup"});
  table.set_title(
      "multi-core scaling (advisory; within-run speedup vs serial)");
  for (const json& row : rows->as_array()) {
    const json* name = row.find("name");
    const json* points = row.find("points");
    if (name == nullptr || points == nullptr || !points->is_array()) continue;
    for (const json& point : points->as_array()) {
      const json* threads = point.find("threads");
      const json* tile = point.find("tile_words");
      const json* rate = point.find("node_rounds_per_sec");
      const json* speedup = point.find("speedup");
      if (threads == nullptr || rate == nullptr || speedup == nullptr) {
        continue;
      }
      table.add_row(
          {name->as_string(),
           beepkit::support::table::num(
               static_cast<long long>(threads->as_u64())),
           tile != nullptr ? beepkit::support::table::num(
                                 static_cast<long long>(tile->as_u64()))
                           : "-",
           format_rate(rate->as_double()),
           beepkit::support::table::num(speedup->as_double(), 2) + "x"});
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Switch names are matched with the "--" prefix stripped (see
  // support::cli), so list them bare.
  const beepkit::support::cli args(argc, argv,
                                   {"strict", "block-catastrophic"});
  if (args.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: throughput_compare baseline.json current.json "
                 "[--threshold 0.30] [--strict] [--block-catastrophic] "
                 "[--catastrophic 0.50] [--csv out.csv] "
                 "[--scaling report.json]\n");
    return 2;
  }
  const double threshold = args.get_double("threshold", 0.30);
  const bool strict = args.get_bool("strict", false);
  const bool block_catastrophic = args.get_bool("block-catastrophic", false);
  const double catastrophic = args.get_double("catastrophic", 0.50);

  const auto baseline = load_report(args.positionals()[0]);
  const auto current = load_report(args.positionals()[1]);
  if (!baseline.has_value() || !current.has_value()) return 2;

  beepkit::support::table report(
      {"benchmark", "baseline", "current", "delta", "verdict"});
  report.set_title("engine_throughput vs blessed baseline (threshold " +
                   beepkit::support::table::num(threshold * 100.0, 0) + "%)");
  std::size_t regressions = 0;
  std::size_t catastrophic_regressions = 0;
  std::size_t matched = 0;
  for (const bench_rate& base : *baseline) {
    const bench_rate* cur = find_rate(*current, base.name);
    if (cur == nullptr) {
      report.add_row({base.name, format_rate(base.items_per_second), "-", "-",
                      "missing in current"});
      continue;
    }
    ++matched;
    if (base.items_per_second <= 0.0) {
      report.add_row({base.name, "0", format_rate(cur->items_per_second), "-",
                      "no baseline rate"});
      continue;
    }
    const double ratio = cur->items_per_second / base.items_per_second;
    std::string verdict = "ok";
    if (ratio < 1.0 - catastrophic) {
      verdict = "CATASTROPHIC";
      ++catastrophic_regressions;
      ++regressions;
    } else if (ratio < 1.0 - threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (ratio > 1.0 + threshold) {
      verdict = "improved";
    }
    std::ostringstream delta;
    delta.precision(1);
    delta << std::fixed << (ratio - 1.0) * 100.0 << "%";
    report.add_row({base.name, format_rate(base.items_per_second),
                    format_rate(cur->items_per_second), delta.str(), verdict});
  }
  for (const bench_rate& cur : *current) {
    if (find_rate(*baseline, cur.name) == nullptr) {
      report.add_row({cur.name, "-", format_rate(cur.items_per_second), "-",
                      "new (no baseline)"});
    }
  }
  std::printf("%s\n", report.to_string().c_str());
  std::printf("%zu compared, %zu regression(s) beyond %.0f%%, "
              "%zu catastrophic (beyond %.0f%%)\n",
              matched, regressions, threshold * 100.0,
              catastrophic_regressions, catastrophic * 100.0);
  // Advisory telemetry-overhead line: when the current report carries
  // both TelemetryProbes rows, their within-run ratio is a
  // machine-independent signal (same binary, same runner, same
  // instance) for the probes-on cost. Never affects the exit code.
  {
    const bench_rate* on = find_rate(*current, "BM_TelemetryProbesOn");
    const bench_rate* off = find_rate(*current, "BM_TelemetryProbesOff");
    if (on != nullptr && off != nullptr && off->items_per_second > 0.0) {
      const double overhead =
          1.0 - on->items_per_second / off->items_per_second;
      std::printf("telemetry overhead (advisory): probes-on runs at "
                  "%.2f%% below probes-off (target < 2%%)\n",
                  overhead * 100.0);
    }
  }
  if (const auto scaling = args.get("scaling"); scaling.has_value()) {
    print_scaling_section(*scaling);  // advisory: never affects exit code
  }
  if (const auto csv = args.get("csv"); csv.has_value()) {
    if (!beepkit::support::write_text_file(*csv, report.to_csv())) {
      std::fprintf(stderr, "throughput_compare: cannot write %s\n",
                   csv->c_str());
      return 2;
    }
  }
  if (strict && regressions > 0) return 1;
  if (block_catastrophic && catastrophic_regressions > 0) return 1;
  return 0;
}
