#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace beepkit::graph {

std::vector<std::uint32_t> bfs_distances(const graph& g, node_id source) {
  std::vector<std::uint32_t> dist(g.node_count(), unreachable);
  if (source >= g.node_count()) return dist;
  std::queue<node_id> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const node_id u = frontier.front();
    frontier.pop();
    for (node_id v : g.neighbors(u)) {
      if (dist[v] == unreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool is_connected(const graph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == unreachable; });
}

std::uint32_t eccentricity(const graph& g, node_id source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == unreachable) return unreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const graph& g) {
  std::uint32_t diameter = 0;
  for (node_id u = 0; u < g.node_count(); ++u) {
    const std::uint32_t ecc = eccentricity(g, u);
    if (ecc == unreachable) return unreachable;
    diameter = std::max(diameter, ecc);
  }
  return diameter;
}

std::uint32_t diameter_double_sweep(const graph& g, int sweeps) {
  if (g.node_count() == 0) return 0;
  std::uint32_t best = 0;
  node_id start = 0;
  for (int s = 0; s < sweeps; ++s) {
    const auto dist = bfs_distances(g, start);
    node_id farthest = start;
    std::uint32_t ecc = 0;
    for (node_id v = 0; v < g.node_count(); ++v) {
      if (dist[v] != unreachable && dist[v] > ecc) {
        ecc = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, ecc);
    if (farthest == start) break;
    start = farthest;
  }
  return best;
}

std::vector<std::vector<std::uint32_t>> distance_matrix(const graph& g) {
  std::vector<std::vector<std::uint32_t>> matrix;
  matrix.reserve(g.node_count());
  for (node_id u = 0; u < g.node_count(); ++u) {
    matrix.push_back(bfs_distances(g, u));
  }
  return matrix;
}

std::optional<std::vector<node_id>> shortest_path(const graph& g, node_id u,
                                                  node_id v) {
  if (u >= g.node_count() || v >= g.node_count()) return std::nullopt;
  if (u == v) return std::vector<node_id>{u};

  // BFS from v so that walking parents from u yields the path in order.
  const auto dist = bfs_distances(g, v);
  if (dist[u] == unreachable) return std::nullopt;

  std::vector<node_id> path;
  path.reserve(dist[u] + 1);
  node_id current = u;
  path.push_back(current);
  while (current != v) {
    for (node_id next : g.neighbors(current)) {
      if (dist[next] + 1 == dist[current]) {
        current = next;
        break;
      }
    }
    path.push_back(current);
  }
  return path;
}

std::vector<node_id> exact_distance_set(const graph& g, node_id u,
                                        std::uint32_t d) {
  const auto dist = bfs_distances(g, u);
  std::vector<node_id> result;
  for (node_id v = 0; v < g.node_count(); ++v) {
    if (dist[v] == d) result.push_back(v);
  }
  return result;
}

}  // namespace beepkit::graph
