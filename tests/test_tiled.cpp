// Tiled intra-trial parallelism + the plane-authoritative lazy state
// model:
//
//  * support::tile_executor / parallel_for_words must cover the word
//    range as an exact partition and propagate body exceptions;
//  * engines running under set_parallelism must be draw-for-draw
//    bit-identical to the serial engine for tile sizes
//    {1 word, 64 words, whole-range} x threads {1, 2, 8} on
//    path/ring/grid/torus/complete at word-boundary sizes
//    {63, 64, 65, 128} - states, leader counts, ledgers, generator
//    draws (the acceptance matrix of the tiled round pipeline);
//  * plane-gear rounds must perform zero eager state write-backs:
//    fsm_protocol::materialization_count() stays 0 while nobody reads,
//    and the first read unpacks exactly once and sees the exact
//    configuration (the lazy states() contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "beeping/engine.hpp"
#include "core/bfw.hpp"
#include "core/bfw_stoneage.hpp"
#include "core/timeout_bfw.hpp"
#include "graph/gather.hpp"
#include "graph/generators.hpp"
#include "stoneage/stoneage.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace beepkit {
namespace {

using beeping::engine;
using beeping::fsm_protocol;
using beeping::noise_model;

struct tile_config {
  std::size_t threads;
  std::size_t tile_words;
};

/// The acceptance grid: {1 word, 64 words, whole-range} tiles x
/// {1, 2, 8} threads.
std::vector<tile_config> tile_configs() {
  std::vector<tile_config> configs;
  for (const std::size_t threads : {1U, 2U, 8U}) {
    for (const std::size_t tile : {1U, 64U, 0U}) {
      configs.push_back({threads, tile});
    }
  }
  return configs;
}

struct graph_case {
  std::string label;
  graph::graph g;
};

/// path/ring/grid/torus/complete at word-boundary node counts.
std::vector<graph_case> boundary_graphs() {
  std::vector<graph_case> cases;
  for (const std::size_t n : {63U, 64U, 65U, 128U}) {
    cases.push_back({"path" + std::to_string(n), graph::make_path(n)});
    cases.push_back({"ring" + std::to_string(n), graph::make_cycle(n)});
    cases.push_back({"complete" + std::to_string(n), graph::make_complete(n)});
  }
  cases.push_back({"grid7x9", graph::make_grid(7, 9)});      // 63
  cases.push_back({"grid8x8", graph::make_grid(8, 8)});      // 64
  cases.push_back({"grid5x13", graph::make_grid(5, 13)});    // 65
  cases.push_back({"grid8x16", graph::make_grid(8, 16)});    // 128
  cases.push_back({"torus3x21", graph::make_torus(3, 21)});  // 63
  cases.push_back({"torus8x8", graph::make_torus(8, 8)});    // 64
  cases.push_back({"torus5x13", graph::make_torus(5, 13)});  // 65
  cases.push_back({"torus8x16", graph::make_torus(8, 16)});  // 128
  return cases;
}

TEST(ParallelForWordsTest, TilesPartitionTheRangeExactly) {
  for (const std::size_t words : {1U, 63U, 64U, 137U}) {
    for (const std::size_t tile : {1U, 5U, 64U, 0U}) {
      for (const std::size_t threads : {1U, 2U, 4U}) {
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
        support::parallel_for_words(
            words, tile, threads,
            [&](std::size_t slot, std::size_t begin, std::size_t end) {
              ASSERT_LT(slot, threads);
              ASSERT_LT(begin, end);
              std::lock_guard<std::mutex> lock(mu);
              ranges.emplace_back(begin, end);
            });
        std::sort(ranges.begin(), ranges.end());
        ASSERT_FALSE(ranges.empty());
        EXPECT_EQ(ranges.front().first, 0U);
        EXPECT_EQ(ranges.back().second, words);
        for (std::size_t i = 1; i < ranges.size(); ++i) {
          EXPECT_EQ(ranges[i - 1].second, ranges[i].first)
              << "gap/overlap at tile " << i << " (words=" << words
              << " tile=" << tile << " threads=" << threads << ")";
        }
      }
    }
  }
}

TEST(ParallelForWordsTest, ZeroWordsRunsNoTiles) {
  bool called = false;
  support::parallel_for_words(0, 4, 4, [&](std::size_t, std::size_t,
                                           std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForWordsTest, BodyExceptionsPropagate) {
  EXPECT_THROW(
      support::parallel_for_words(
          100, 8, 4,
          [](std::size_t, std::size_t begin, std::size_t) {
            if (begin >= 48) throw std::runtime_error("tile failure");
          }),
      std::runtime_error);
}

TEST(TileExecutorTest, ReusableAcrossCallsWithSlotScratch) {
  support::tile_executor exec(4);
  EXPECT_EQ(exec.thread_count(), 4U);
  std::vector<std::uint64_t> input(1000);
  std::iota(input.begin(), input.end(), 1);
  const std::uint64_t expected = 1000ULL * 1001ULL / 2ULL;
  for (int call = 0; call < 50; ++call) {
    std::vector<std::uint64_t> partial(exec.thread_count(), 0);
    exec.run_tiles(input.size(), 7,
                   [&](std::size_t slot, std::size_t begin, std::size_t end) {
                     std::uint64_t sum = 0;
                     for (std::size_t i = begin; i < end; ++i) {
                       sum += input[i];
                     }
                     partial[slot] += sum;
                   });
    std::uint64_t total = 0;
    for (const std::uint64_t part : partial) total += part;
    ASSERT_EQ(total, expected) << "call " << call;
  }
}

/// Runs `rounds` rounds on two engines - serial reference vs tiled -
/// and requires the full observable trace to match: states after every
/// round, leader counts, cumulative beep counts, coin totals and the
/// next raw draw of every per-node stream.
void expect_tiled_matches_serial(const graph::graph& g,
                                 const beeping::state_machine& machine,
                                 const tile_config& cfg, int rounds,
                                 const noise_model& noise,
                                 const std::string& label) {
  fsm_protocol serial_proto(machine);
  fsm_protocol tiled_proto(machine);
  engine serial(g, serial_proto, 7, noise);
  engine tiled(g, tiled_proto, 7, noise);
  tiled.set_parallelism(cfg.threads, cfg.tile_words);
  for (int round = 0; round < rounds; ++round) {
    serial.step();
    tiled.step();
    ASSERT_EQ(tiled_proto.states(), serial_proto.states())
        << label << " diverged at round " << round;
    ASSERT_EQ(tiled.leader_count(), serial.leader_count()) << label;
  }
  for (graph::node_id u = 0; u < g.node_count(); ++u) {
    ASSERT_EQ(tiled.beep_count(u), serial.beep_count(u))
        << label << " ledger mismatch at node " << u;
  }
  EXPECT_EQ(tiled.total_coins_consumed(), serial.total_coins_consumed())
      << label;
  for (graph::node_id u = 0; u < g.node_count(); ++u) {
    ASSERT_EQ(tiled.node_rng(u).next_u64(), serial.node_rng(u).next_u64())
        << label << " generator diverged at node " << u;
  }
}

TEST(TiledEngineBitIdentityTest, AllConfigsMatchSerialOnAllTopologies) {
  const core::bfw_machine machine(0.5);
  for (const auto& c : boundary_graphs()) {
    for (const tile_config& cfg : tile_configs()) {
      expect_tiled_matches_serial(
          c.g, machine, cfg, 40, noise_model{},
          c.label + " threads=" + std::to_string(cfg.threads) +
              " tile=" + std::to_string(cfg.tile_words));
    }
  }
}

TEST(TiledEngineBitIdentityTest, TimeoutBfwRippleCarryTiledMatchesSerial) {
  // T = 9: the bit-sliced patience counters advance via ripple-carry
  // adds - the seam-sensitive kernel. The run must also actually be in
  // the plane gear, not the sparse fallback.
  const core::timeout_bfw_machine machine(0.5, 9);
  for (const auto& shape :
       {graph_case{"path65", graph::make_path(65)},
        graph_case{"grid8x16", graph::make_grid(8, 16)},
        graph_case{"torus8x8", graph::make_torus(8, 8)}}) {
    for (const tile_config& cfg : tile_configs()) {
      fsm_protocol serial_proto(machine);
      fsm_protocol tiled_proto(machine);
      engine serial(shape.g, serial_proto, 11);
      engine tiled(shape.g, tiled_proto, 11);
      tiled.set_parallelism(cfg.threads, cfg.tile_words);
      serial.run_rounds(60);
      tiled.run_rounds(60);
      ASSERT_GT(tiled.plane_rounds(), 0U) << shape.label;
      ASSERT_EQ(tiled.plane_rounds(), serial.plane_rounds()) << shape.label;
      ASSERT_EQ(tiled_proto.states(), serial_proto.states())
          << shape.label << " threads=" << cfg.threads
          << " tile=" << cfg.tile_words;
      ASSERT_EQ(tiled.total_coins_consumed(), serial.total_coins_consumed());
    }
  }
}

TEST(TiledEngineBitIdentityTest, ReceptionNoiseTiledMatchesSerial) {
  // The tiled noise pass over the full acceptance matrix: every
  // word-boundary topology x {1, 2, 8} threads x {1 word, 64 words,
  // whole-range} tiles, draws included (each node owns a dedicated
  // noise stream, so the tiled pass must replay the serial draw
  // sequence exactly).
  const core::bfw_machine machine(0.5);
  const noise_model noise{0.1, 0.05};
  for (const auto& c : boundary_graphs()) {
    for (const tile_config& cfg : tile_configs()) {
      expect_tiled_matches_serial(
          c.g, machine, cfg, 30, noise,
          "noisy " + c.label + " threads=" + std::to_string(cfg.threads) +
              " tile=" + std::to_string(cfg.tile_words));
    }
  }
}

TEST(TiledEngineBitIdentityTest, ReceptionNoiseTiledUnderForcedKernels) {
  // Noise stacked on the forced gather kernels: the noise pass runs
  // between the gather and the sweep, so every kernel x tile x thread
  // point must still be draw-for-draw serial-identical.
  const core::bfw_machine machine(0.5);
  const noise_model noise{0.08, 0.03};
  for (const graph::gather_kernel kernel :
       {graph::gather_kernel::word_csr_push,
        graph::gather_kernel::packed_pull}) {
    for (const tile_config& cfg : tile_configs()) {
      fsm_protocol serial_proto(machine);
      fsm_protocol tiled_proto(machine);
      const auto g = graph::make_complete_binary_tree(127);
      engine serial(g, serial_proto, 19, noise);
      engine tiled(g, tiled_proto, 19, noise);
      serial.set_gather_kernel(kernel);
      tiled.set_gather_kernel(kernel);
      tiled.set_parallelism(cfg.threads, cfg.tile_words);
      serial.run_rounds(25);
      tiled.run_rounds(25);
      ASSERT_EQ(tiled_proto.states(), serial_proto.states())
          << graph::gather_kernel_name(kernel) << " threads=" << cfg.threads
          << " tile=" << cfg.tile_words;
      ASSERT_EQ(tiled.total_coins_consumed(), serial.total_coins_consumed());
    }
  }
}

TEST(TiledEngineBitIdentityTest, NoisePassReportsTiledExecution) {
  // Acceptance: with an executor attached the noise pass goes through
  // the tile executor every round - zero serial per-node remnants.
  const core::bfw_machine machine(0.5);
  const noise_model noise{0.1, 0.05};
  fsm_protocol proto(machine);
  engine sim(graph::make_path(128), proto, 7, noise);
  sim.set_parallelism(2, 1);
  sim.run_rounds(20);
  if (support::telemetry::compiled_in) {
    const auto& metrics = sim.telemetry_metrics();
    EXPECT_EQ(metrics.noise_passes_tiled, 20U);
    EXPECT_EQ(metrics.noise_passes_serial, 0U);
  }
}

TEST(TiledEngineBitIdentityTest, SparseSweepTiledAboveDensityThreshold) {
  // A 65-state machine is beyond the 6-plane gear, so every fast-path
  // round is the sparse fused sweep; at 2^17 nodes (2048 words, all
  // active from round 0) the populated-word count clears the tiled
  // threshold. The tiled sweep must match the serial engine
  // draw-for-draw and report tiled execution (zero serial sparse
  // rounds).
  const core::timeout_bfw_machine machine(0.5, 60);
  ASSERT_GT(machine.state_count(), 64U);
  const auto g = graph::make_path(std::size_t{1} << 17);
  for (const tile_config& cfg :
       {tile_config{2, 0}, tile_config{8, 4096}, tile_config{3, 1}}) {
    fsm_protocol serial_proto(machine);
    fsm_protocol tiled_proto(machine);
    engine serial(g, serial_proto, 23);
    engine tiled(g, tiled_proto, 23);
    tiled.set_parallelism(cfg.threads, cfg.tile_words);
    ASSERT_TRUE(tiled.fast_path_active());
    serial.run_rounds(8);
    tiled.run_rounds(8);
    ASSERT_EQ(tiled.plane_rounds(), 0U);  // sparse gear, never the planes
    ASSERT_EQ(tiled_proto.states(), serial_proto.states())
        << "threads=" << cfg.threads << " tile=" << cfg.tile_words;
    ASSERT_EQ(tiled.leader_count(), serial.leader_count());
    ASSERT_EQ(tiled.total_coins_consumed(), serial.total_coins_consumed());
    if (support::telemetry::compiled_in) {
      const auto& metrics = tiled.telemetry_metrics();
      EXPECT_EQ(metrics.sparse_rounds_tiled, 8U);
      EXPECT_EQ(metrics.sparse_rounds_serial, 0U);
    }
  }
}

TEST(TiledEngineBitIdentityTest, SparseSweepFallsBackBelowThreshold) {
  // A 128-node instance is 2 words - far under the density gate - so
  // the sparse rounds run the inline loop even with an executor
  // attached, and the telemetry says so.
  const core::timeout_bfw_machine machine(0.5, 60);
  fsm_protocol proto(machine);
  engine sim(graph::make_path(128), proto, 23);
  sim.set_parallelism(4, 1);
  sim.run_rounds(10);
  if (support::telemetry::compiled_in) {
    const auto& metrics = sim.telemetry_metrics();
    EXPECT_EQ(metrics.sparse_rounds_tiled, 0U);
    EXPECT_EQ(metrics.sparse_rounds_serial, 10U);
  }
}

TEST(TiledEngineConfigTest, AutotunedTileWordsIsStableAndValid) {
  support::tile_executor exec(2);
  const std::size_t tile_words = support::autotuned_tile_words(exec);
  EXPECT_TRUE(tile_words == 0 || tile_words == support::kL2TileWords)
      << tile_words;
  // One-shot probe: repeated calls return the cached choice.
  EXPECT_EQ(support::autotuned_tile_words(exec), tile_words);
  // The probe's own tile claims must not leak into engine telemetry.
  for (const auto& claims : exec.claim_counts()) {
    EXPECT_EQ(claims.tiles, 0U);
    EXPECT_EQ(claims.words, 0U);
  }
}

TEST(TiledEngineConfigTest, TileSizeSurvivesRestartFromProtocol) {
  // set_parallelism(t, 0) resolves the tuned default; a protocol
  // restart must keep running with the exact same tile size (the probe
  // is process-cached, so re-resolving is also stable).
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(graph::make_grid(8, 16), proto, 5);
  sim.set_parallelism(2, 0);
  const std::size_t resolved = sim.tile_words();
  sim.run_rounds(10);
  sim.restart_from_protocol();
  EXPECT_EQ(sim.tile_words(), resolved);
  sim.set_parallelism(2, 0);
  EXPECT_EQ(sim.tile_words(), resolved);
  sim.run_rounds(5);
  EXPECT_EQ(sim.round(), 5U);
}

TEST(TiledEngineBitIdentityTest, ForcedKernelsMatchUnderTiling) {
  // The tiled word-CSR push (per-slot scratch + OR merge) and the
  // tiled packed pull must match the serial engine with the same
  // forced kernel.
  const core::bfw_machine machine(0.5);
  for (const graph::gather_kernel kernel :
       {graph::gather_kernel::word_csr_push,
        graph::gather_kernel::packed_pull}) {
    for (const auto& shape :
         {graph_case{"complete128", graph::make_complete(128)},
          graph_case{"tree127", graph::make_complete_binary_tree(127)}}) {
      for (const tile_config& cfg : tile_configs()) {
        fsm_protocol serial_proto(machine);
        fsm_protocol tiled_proto(machine);
        engine serial(shape.g, serial_proto, 3);
        engine tiled(shape.g, tiled_proto, 3);
        serial.set_gather_kernel(kernel);
        tiled.set_gather_kernel(kernel);
        tiled.set_parallelism(cfg.threads, cfg.tile_words);
        serial.run_rounds(25);
        tiled.run_rounds(25);
        ASSERT_EQ(tiled_proto.states(), serial_proto.states())
            << shape.label << " kernel "
            << graph::gather_kernel_name(kernel)
            << " threads=" << cfg.threads << " tile=" << cfg.tile_words;
        ASSERT_EQ(tiled.gather_kernel_used(), kernel);
      }
    }
  }
}

// The 4-thread intra-trial differential smoke CI runs under TSan: one
// wave-saturated run per topology family at 4 workers, 1-word tiles
// (the maximal-seam configuration).
TEST(TiledEngineBitIdentityTest, FourThreadSmoke) {
  const core::bfw_machine machine(0.5);
  for (const auto& shape :
       {graph_case{"path128", graph::make_path(128)},
        graph_case{"ring128", graph::make_cycle(128)},
        graph_case{"grid8x16", graph::make_grid(8, 16)},
        graph_case{"torus8x16", graph::make_torus(8, 16)},
        graph_case{"complete128", graph::make_complete(128)}}) {
    expect_tiled_matches_serial(shape.g, machine, {4, 1}, 30, noise_model{},
                                shape.label + " 4-thread smoke");
  }
}

TEST(TiledStoneAgeTest, TiledMatchesSerialOnAllConfigs) {
  const core::bfw_stone_automaton automaton(0.5);
  for (const auto& shape :
       {graph_case{"grid8x8", graph::make_grid(8, 8)},
        graph_case{"path65", graph::make_path(65)},
        graph_case{"ring64", graph::make_cycle(64)}}) {
    for (const tile_config& cfg : tile_configs()) {
      stoneage::engine serial(shape.g, automaton, 1, 5);
      stoneage::engine tiled(shape.g, automaton, 1, 5);
      tiled.set_parallelism(cfg.threads, cfg.tile_words);
      for (int round = 0; round < 40; ++round) {
        serial.step();
        tiled.step();
        ASSERT_EQ(tiled.states(), serial.states())
            << shape.label << " threads=" << cfg.threads
            << " tile=" << cfg.tile_words << " round " << round;
        ASSERT_EQ(tiled.leader_count(), serial.leader_count());
      }
    }
  }
}

TEST(TiledStoneAgeTest, PlaneRoundMatchesVirtualCensusPath) {
  // The bit-sliced stone-age round (planes + maintained beep word)
  // against the generic display/census/transition path.
  const core::bfw_stone_automaton automaton(0.5);
  for (const auto& shape :
       {graph_case{"grid8x8", graph::make_grid(8, 8)},
        graph_case{"grid5x13", graph::make_grid(5, 13)}}) {
    stoneage::engine fast(shape.g, automaton, 1, 9);
    stoneage::engine virt(shape.g, automaton, 1, 9);
    virt.set_fast_path_enabled(false);
    ASSERT_TRUE(fast.fast_path_active());
    ASSERT_FALSE(virt.fast_path_active());
    for (int round = 0; round < 40; ++round) {
      fast.step();
      virt.step();
      ASSERT_EQ(fast.states(), virt.states()) << shape.label << " round "
                                              << round;
      ASSERT_EQ(fast.leader_count(), virt.leader_count());
    }
  }
}

// ---- plane-authoritative lazy states --------------------------------

TEST(LazyStateTest, PlaneRoundsPerformZeroEagerWriteBacks) {
  // The acceptance counter: while nobody reads the protocol's state
  // vector, plane rounds must not materialize it at all.
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  engine sim(g, proto, 21);
  sim.run_rounds(50);
  ASSERT_GT(sim.plane_rounds(), 0U);
  EXPECT_EQ(proto.materialization_count(), 0U)
      << "plane rounds wrote the state vector eagerly";
  // The first read unpacks exactly once ...
  const std::vector<beeping::state_id> lazy = proto.states();
  EXPECT_EQ(proto.materialization_count(), 1U);
  // ... and a repeated read costs nothing further.
  (void)proto.states();
  EXPECT_EQ(proto.materialization_count(), 1U);
  // The unpacked configuration is the exact one the scalar reference
  // reaches.
  fsm_protocol ref_proto(machine);
  engine ref(g, ref_proto, 21);
  for (int round = 0; round < 50; ++round) ref.step_reference();
  EXPECT_EQ(lazy, ref_proto.states());
}

TEST(LazyStateTest, PerRoundReadsStayExact) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(8, 16);
  fsm_protocol proto(machine);
  fsm_protocol ref_proto(machine);
  engine sim(g, proto, 33);
  engine ref(g, ref_proto, 33);
  for (int round = 0; round < 40; ++round) {
    sim.step();
    ref.step_reference();
    ASSERT_EQ(proto.states(), ref_proto.states()) << "round " << round;
    ASSERT_EQ(proto.state_of(0), ref_proto.state_of(0));
  }
  EXPECT_GT(sim.plane_rounds(), 0U);
}

TEST(LazyStateTest, EngineDestructionMaterializesPendingState) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  {
    engine sim(g, proto, 21);
    sim.run_rounds(50);
    ASSERT_GT(sim.plane_rounds(), 0U);
    EXPECT_EQ(proto.materialization_count(), 0U);
  }  // engine dies with the vector stale: the dtor must unpack
  fsm_protocol ref_proto(machine);
  engine ref(g, ref_proto, 21);
  for (int round = 0; round < 50; ++round) ref.step_reference();
  EXPECT_EQ(proto.states(), ref_proto.states());
}

TEST(LazyStateTest, DisablingFastPathHandsAuthorityBack) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  fsm_protocol ref_proto(machine);
  engine sim(g, proto, 13);
  engine ref(g, ref_proto, 13);
  sim.run_rounds(20);
  ref.run_rounds(20);
  sim.set_fast_path_enabled(false);
  sim.run_rounds(20);
  ref.run_rounds(20);
  EXPECT_EQ(proto.states(), ref_proto.states());
  sim.set_fast_path_enabled(true);
  sim.run_rounds(10);
  ref.run_rounds(10);
  EXPECT_EQ(proto.states(), ref_proto.states());
}

TEST(LazyStateTest, SetStatesWhileStaleOverridesCleanly) {
  // set_states after unobserved plane rounds: the injected
  // configuration must win (no pending unpack may clobber it).
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  engine sim(g, proto, 17);
  sim.run_rounds(30);
  ASSERT_GT(sim.plane_rounds(), 0U);
  std::vector<beeping::state_id> injected(g.node_count(),
                                          machine.initial_state());
  injected[0] = 1;
  proto.set_states(injected);
  sim.restart_from_protocol();
  EXPECT_EQ(proto.states(), injected);
  sim.run_rounds(5);  // must not throw and must stay consistent
  EXPECT_EQ(sim.round(), 5U);
}

TEST(LazyStateTest, TiledPlaneRoundsAlsoSkipWriteBacks) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  engine sim(g, proto, 21);
  sim.set_parallelism(8, 1);
  sim.run_rounds(50);
  ASSERT_GT(sim.plane_rounds(), 0U);
  EXPECT_EQ(proto.materialization_count(), 0U);
}

/// A beeping machine with more than 64 states embedded in the
/// stone-age model (Timeout-BFW T = 60 has 65 states): the bit-sliced
/// plane fast path cannot serve it, so the engine must fall back to
/// the generic census path instead of refusing to construct.
class wide_stone_automaton final : public stoneage::automaton {
 public:
  wide_stone_automaton() : machine_(0.5, 60) {}

  [[nodiscard]] std::size_t state_count() const override {
    return machine_.state_count();
  }
  [[nodiscard]] std::size_t alphabet_size() const override { return 2; }
  [[nodiscard]] stoneage::state_id initial_state() const override {
    return machine_.initial_state();
  }
  [[nodiscard]] stoneage::symbol display(
      stoneage::state_id state) const override {
    return machine_.beeps(state) ? 1 : 0;
  }
  [[nodiscard]] bool is_leader(stoneage::state_id state) const override {
    return machine_.is_leader(state);
  }
  [[nodiscard]] stoneage::state_id transition(
      stoneage::state_id state, std::span<const std::uint32_t> counts,
      support::rng& rng) const override {
    const bool heard = machine_.beeps(state) || counts[1] > 0;
    return heard ? machine_.delta_top(state, rng)
                 : machine_.delta_bot(state, rng);
  }
  [[nodiscard]] std::string state_name(
      stoneage::state_id state) const override {
    return machine_.state_name(state);
  }
  [[nodiscard]] std::string name() const override { return "wide-stone"; }
  [[nodiscard]] const beeping::state_machine* beep_machine() const override {
    return &machine_;
  }

 private:
  core::timeout_bfw_machine machine_;
};

TEST(TiledStoneAgeTest, Over64StateMachineFallsBackToCensusPath) {
  const wide_stone_automaton automaton;
  ASSERT_GT(automaton.state_count(), 64U);
  const auto g = graph::make_grid(4, 4);
  stoneage::engine sim(g, automaton, 1, 3);  // must not throw
  EXPECT_FALSE(sim.fast_path_active());
  sim.run_rounds(20);
  EXPECT_EQ(sim.round(), 20U);
}

TEST(LazyStateTest, StoneAgeFastRoundsAreLazyToo) {
  const core::bfw_stone_automaton automaton(0.5);
  const auto g = graph::make_grid(8, 8);
  stoneage::engine sim(g, automaton, 1, 25);
  ASSERT_TRUE(sim.fast_path_active());
  sim.run_rounds(40);
  EXPECT_EQ(sim.state_materializations(), 0U)
      << "stone-age plane rounds wrote the state vector eagerly";
  stoneage::engine ref(g, automaton, 1, 25);
  ref.set_fast_path_enabled(false);
  ref.run_rounds(40);
  EXPECT_EQ(sim.states(), ref.states());
  EXPECT_EQ(sim.state_materializations(), 1U);
}

}  // namespace
}  // namespace beepkit
