// Tests for the fault-injection subsystem (core/faults, graph/patch,
// the engine fault surface and the recovery harness):
//  * an empty fault_plan is draw-for-draw bit-identical to a plain run
//    on every gear (plane/compiled, interpreted, virtual, tiled);
//  * topology patches (churn) match a materialized modified graph
//    under every forced gather kernel and tiling, at word boundaries
//    {63, 64, 65, 128}, on explicit and implicit views;
//  * crash/restart differentials across gears against the scalar
//    reference step, including degenerate shapes (crash every node,
//    crash-then-rejoin in the same round);
//  * fault_plan JSON round-trips; plans validate; faulted runs replay
//    bit-exactly; faulted sweep cells merge bit-identically across
//    shards; the bundled adversaries behave as specified.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/recovery.hpp"
#include "beeping/engine.hpp"
#include "core/bfw.hpp"
#include "core/convergence.hpp"
#include "core/faults.hpp"
#include "graph/generators.hpp"
#include "graph/patch.hpp"
#include "graph/view.hpp"
#include "sweep/jsonl.hpp"
#include "sweep/sweep.hpp"

namespace {

using namespace beepkit;
using beeping::engine;
using beeping::fsm_protocol;
using beeping::state_id;
using graph::gather_kernel;
using graph::node_id;

struct gear_config {
  std::string label;
  bool fast = true;
  bool compiled = true;
  std::size_t threads = 1;
  std::size_t tile_words = 0;
};

std::vector<gear_config> all_gears() {
  return {{"plane+compiled"},
          {"interpreted", true, false},
          {"virtual", false, true},
          {"tiled threads=3", true, true, 3, 0},
          {"tiled 1-word", true, true, 2, 1}};
}

void apply_gear(engine& sim, const gear_config& gear) {
  if (!gear.fast) sim.set_fast_path_enabled(false);
  if (!gear.compiled) sim.set_compiled_kernel_enabled(false);
  if (gear.threads != 1 || gear.tile_words != 0) {
    sim.set_parallelism(gear.threads, gear.tile_words);
  }
}

/// One edge toggle of a churn schedule, applied both to an overlay and
/// to a materialized edge list.
struct toggle {
  node_id u;
  node_id v;
};

graph::graph materialize_toggles(const graph::graph& base,
                                 const std::vector<toggle>& toggles) {
  std::vector<graph::edge> edges = base.edges();
  for (const toggle& t : toggles) {
    const graph::edge e{std::min(t.u, t.v), std::max(t.u, t.v)};
    bool removed = false;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i] == e) {
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(i));
        removed = true;
        break;
      }
    }
    if (!removed) edges.push_back(e);
  }
  return graph::graph(base.node_count(), std::move(edges));
}

// ---- empty-plan bit-identity -----------------------------------------

TEST(FaultSessionTest, EmptyPlanBitIdenticalToPlainRunOnEveryGear) {
  const auto g = graph::make_grid(8, 8);
  const core::bfw_machine machine(0.5);
  for (const gear_config& gear : all_gears()) {
    fsm_protocol proto_a(machine);
    engine plain(g, proto_a, 99);
    apply_gear(plain, gear);
    const auto expected = plain.run_until_single_leader(50'000);

    fsm_protocol proto_b(machine);
    engine faulted(g, proto_b, 99);
    apply_gear(faulted, gear);
    core::fault_plan plan;
    core::fault_session session(plan, faulted, 99);
    const auto got = session.run_until_single_leader(50'000);

    EXPECT_EQ(got.rounds, expected.rounds) << gear.label;
    EXPECT_EQ(got.converged, expected.converged) << gear.label;
    EXPECT_EQ(got.leaders, expected.leaders) << gear.label;
    EXPECT_EQ(faulted.total_coins_consumed(), plain.total_coins_consumed())
        << gear.label;
    EXPECT_EQ(proto_b.states(), proto_a.states()) << gear.label;
    EXPECT_EQ(session.faults_applied(), 0U) << gear.label;
    EXPECT_EQ(session.overlay(), nullptr) << gear.label;
  }
}

TEST(ConvergenceTest, RunElectionWithEmptyPlanMatchesPlainRun) {
  const auto g = graph::make_path(33);
  const core::bfw_machine machine(0.5);
  const auto plain = core::run_election(g, machine, 5, {});
  core::fault_plan plan;
  core::election_options options;
  options.faults = &plan;
  const auto faulted = core::run_election(g, machine, 5, options);
  EXPECT_EQ(faulted.rounds, plain.rounds);
  EXPECT_EQ(faulted.converged, plain.converged);
  EXPECT_EQ(faulted.leader, plain.leader);
  EXPECT_EQ(faulted.total_coins, plain.total_coins);
}

// ---- topology patches vs materialized graphs -------------------------

/// Kernels forceable on a path graph (tagged, so the stencil applies
/// too).
std::vector<gather_kernel> path_kernels() {
  return {gather_kernel::stencil, gather_kernel::word_csr_push,
          gather_kernel::packed_pull, gather_kernel::legacy_push,
          gather_kernel::legacy_pull};
}

TEST(TopologyPatchTest, ChurnMatchesMaterializedGraphAtWordBoundaries) {
  const core::bfw_machine machine(0.5);
  for (const std::size_t n : {63UL, 64UL, 65UL, 128UL}) {
    const auto base = graph::make_path(n);
    const node_id last = static_cast<node_id>(n - 1);
    // Toggles straddling the word boundaries: a long-range chord, a
    // removed path edge right at the 64-bit seam, and a chord whose
    // endpoints land in different words.
    const std::vector<toggle> toggles = {
        {0, last},
        {static_cast<node_id>(n / 2 - 1), static_cast<node_id>(n / 2)},
        {1, static_cast<node_id>(std::min<std::size_t>(62, n - 2))}};
    const auto modified = materialize_toggles(base, toggles);

    for (const gather_kernel kernel : path_kernels()) {
      for (const std::size_t threads : {1UL, 3UL}) {
        fsm_protocol proto(machine);
        engine sim(base, proto, 17);
        sim.set_gather_kernel(kernel);
        if (threads != 1) sim.set_parallelism(threads, 0);
        graph::patch_overlay overlay{graph::topology_view(base)};
        for (const toggle& t : toggles) overlay.toggle_edge(t.u, t.v);
        sim.set_topology_patch(&overlay);

        fsm_protocol ref_proto(machine);
        engine ref(modified, ref_proto, 17);

        const std::string label = "n=" + std::to_string(n) + " kernel=" +
                                  std::to_string(static_cast<int>(kernel)) +
                                  " threads=" + std::to_string(threads);
        for (int round = 0; round < 96; ++round) {
          sim.step();
          ref.step_reference();
          ASSERT_EQ(proto.states(), ref_proto.states())
              << label << " diverged at round " << round;
          ASSERT_EQ(sim.leader_count(), ref.leader_count()) << label;
        }
        EXPECT_EQ(sim.total_coins_consumed(), ref.total_coins_consumed())
            << label;
      }
    }
  }
}

TEST(TopologyPatchTest, PatchWorksOnImplicitViews) {
  const std::size_t n = 65;
  const auto view =
      graph::topology_view::implicit({graph::topology::kind::path, 1, n});
  const auto base = graph::make_path(n);
  const std::vector<toggle> toggles = {{0, 64}, {31, 32}, {2, 63}};
  const auto modified = materialize_toggles(base, toggles);
  const core::bfw_machine machine(0.5);

  fsm_protocol proto(machine);
  engine sim(view, proto, 23);
  graph::patch_overlay overlay{view};
  for (const toggle& t : toggles) overlay.toggle_edge(t.u, t.v);
  sim.set_topology_patch(&overlay);

  fsm_protocol ref_proto(machine);
  engine ref(modified, ref_proto, 23);
  for (int round = 0; round < 96; ++round) {
    sim.step();
    ref.step_reference();
    ASSERT_EQ(proto.states(), ref_proto.states())
        << "implicit view diverged at round " << round;
  }
  EXPECT_EQ(sim.total_coins_consumed(), ref.total_coins_consumed());
}

TEST(TopologyPatchTest, NodeCountMismatchThrows) {
  const auto g = graph::make_path(16);
  const auto other = graph::make_path(17);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 1);
  graph::patch_overlay overlay{graph::topology_view(other)};
  EXPECT_THROW(sim.set_topology_patch(&overlay), std::invalid_argument);
}

// ---- crash / restart differentials -----------------------------------

/// A scripted fault: at `round`, crash (or revive) `node`.
struct scripted_fault {
  std::uint64_t round;
  node_id node;
  bool crash;
};

void drive_with_faults(engine& sim, const std::vector<scripted_fault>& script,
                       std::uint64_t rounds, bool reference) {
  for (std::uint64_t r = 0; r <= rounds; ++r) {
    for (const scripted_fault& f : script) {
      if (f.round == r) {
        if (f.crash) {
          sim.fault_crash(f.node);
        } else {
          sim.fault_restart(f.node);
        }
      }
    }
    if (r == rounds) break;
    if (reference) {
      sim.step_reference();
    } else {
      sim.step();
    }
  }
}

TEST(CrashFaultTest, CrashAndRejoinMatchReferenceOnEveryGearAtBoundaries) {
  const core::bfw_machine machine(0.5);
  for (const std::size_t n : {63UL, 64UL, 65UL, 128UL}) {
    const auto g = graph::make_path(n);
    const node_id seam = static_cast<node_id>(std::min<std::size_t>(63, n - 1));
    const std::vector<scripted_fault> script = {
        {8, 0, true},             // crash the word-0 boundary node
        {8, seam, true},          // crash at the 64-bit seam
        {20, static_cast<node_id>(n / 2), true},
        {40, 0, false},           // rejoin in the initial state
        {40, seam, false},
    };
    for (const gear_config& gear : all_gears()) {
      fsm_protocol proto(machine);
      engine sim(g, proto, 7);
      apply_gear(sim, gear);
      drive_with_faults(sim, script, 96, /*reference=*/false);

      fsm_protocol ref_proto(machine);
      engine ref(g, ref_proto, 7);
      drive_with_faults(ref, script, 96, /*reference=*/true);

      const std::string label = "n=" + std::to_string(n) + " " + gear.label;
      EXPECT_EQ(proto.states(), ref_proto.states()) << label;
      EXPECT_EQ(sim.leader_count(), ref.leader_count()) << label;
      EXPECT_EQ(sim.alive_leader_count(), ref.alive_leader_count()) << label;
      EXPECT_EQ(sim.total_coins_consumed(), ref.total_coins_consumed())
          << label;
      for (node_id u = 0; u < n; ++u) {
        ASSERT_EQ(sim.beep_count(u), ref.beep_count(u))
            << label << " ledger mismatch at node " << u;
      }
    }
  }
}

TEST(CrashFaultTest, CrashedNodeFreezesAndSilences) {
  const auto g = graph::make_path(65);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 3);
  for (int r = 0; r < 10; ++r) sim.step();
  const node_id victim = 32;
  sim.fault_crash(victim);
  const state_id frozen = proto.states()[victim];
  const std::uint64_t beeps = sim.beep_count(victim);
  for (int r = 0; r < 40; ++r) {
    sim.step();
    ASSERT_EQ(proto.states()[victim], frozen) << "corpse moved at round " << r;
    ASSERT_EQ(sim.beep_count(victim), beeps) << "corpse beeped at round " << r;
  }
  EXPECT_TRUE(sim.crashed(victim));
  EXPECT_EQ(sim.crashed_count(), 1U);
}

TEST(CrashFaultTest, CrashEveryNodeThenRestartRecovers) {
  const auto g = graph::make_grid(8, 8);
  const std::size_t n = g.node_count();
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 13);
  for (int r = 0; r < 5; ++r) sim.step();
  for (node_id u = 0; u < n; ++u) sim.fault_crash(u);
  EXPECT_EQ(sim.crashed_count(), n);
  EXPECT_EQ(sim.alive_leader_count(), 0U);
  const std::vector<state_id> frozen = proto.states();
  for (int r = 0; r < 10; ++r) sim.step();
  EXPECT_EQ(proto.states(), frozen) << "a dead network moved";
  // run_until stops immediately: zero alive leaders is absorbing.
  const auto stalled = sim.run_until_single_leader(1'000'000);
  EXPECT_FALSE(stalled.converged);
  EXPECT_EQ(stalled.leaders, 0U);
  for (node_id u = 0; u < n; ++u) sim.fault_restart(u);
  EXPECT_EQ(sim.crashed_count(), 0U);
  const auto result = sim.run_until_single_leader(1'000'000);
  EXPECT_TRUE(result.converged);
}

TEST(CrashFaultTest, CrashThenRejoinSameRound) {
  const auto g = graph::make_path(64);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 21);
  for (int r = 0; r < 12; ++r) sim.step();
  sim.fault_crash(5);
  sim.fault_restart(5);  // same-round rejoin: alive again, initial state
  EXPECT_FALSE(sim.crashed(5));
  EXPECT_EQ(sim.crashed_count(), 0U);
  sim.fault_crash_as(6, 1);
  sim.fault_restart_as(6, 0);
  EXPECT_FALSE(sim.crashed(6));
  const auto result = sim.run_until_single_leader(1'000'000);
  EXPECT_TRUE(result.converged);
}

TEST(CrashFaultTest, FaultApiPreconditions) {
  const auto g = graph::make_path(16);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 1);
  EXPECT_THROW(sim.fault_crash(16), std::invalid_argument);
  EXPECT_THROW(sim.fault_restart(3), std::logic_error);  // alive node
  sim.fault_crash(3);
  EXPECT_NO_THROW(sim.fault_crash(3));  // idempotent re-crash
  sim.fault_restart(3);
  EXPECT_FALSE(sim.crashed(3));
}

TEST(CrashFaultTest, RestartFromProtocolClearsFaults) {
  const auto g = graph::make_path(32);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 2);
  for (int r = 0; r < 8; ++r) sim.step();
  sim.fault_crash(1);
  sim.fault_crash(30);
  EXPECT_EQ(sim.crashed_count(), 2U);
  proto.set_states(std::vector<state_id>(32, machine.initial_state()));
  sim.restart_from_protocol();
  EXPECT_EQ(sim.crashed_count(), 0U);
  EXPECT_EQ(sim.alive_leader_count(), sim.leader_count());
}

TEST(CrashFaultTest, AliveLeaderCountDrivesTermination) {
  const auto g = graph::make_complete(8);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 31);
  const auto result = sim.run_until_single_leader(100'000);
  ASSERT_TRUE(result.converged);
  const node_id leader = sim.sole_leader();
  sim.fault_crash(leader);
  EXPECT_EQ(sim.alive_leader_count(), 0U);
  EXPECT_EQ(sim.leader_count(), 1U);  // the corpse still holds the flag
}

// ---- fault_plan JSON + validation ------------------------------------

core::fault_plan every_kind_plan() {
  core::fault_plan plan;
  plan.name = "every_kind";
  plan.fault_seed = 42;
  plan.crash(3, 1);
  plan.crash_as(4, 2, 1);
  plan.restart(9, 1);
  plan.restart_as(10, 2, 0);
  plan.add_edge(5, 0, 7);
  plan.remove_edge(6, 3, 4);
  plan.churn(12, 2, 4, 24);
  plan.burst(20, 3, 8);
  plan.inject(0, std::vector<state_id>(8, 0));
  plan.corrupt(30, 2);
  return plan;
}

TEST(FaultPlanTest, JsonRoundTripIsExact) {
  const core::fault_plan plan = every_kind_plan();
  const std::string text = plan.to_json().dump();
  const core::fault_plan back = core::fault_plan::from_json_text(text);
  EXPECT_EQ(back.name, plan.name);
  EXPECT_EQ(back.fault_seed, plan.fault_seed);
  ASSERT_EQ(back.events.size(), plan.events.size());
  EXPECT_EQ(back.to_json().dump(), text);
}

TEST(FaultPlanTest, MalformedJsonThrows) {
  EXPECT_THROW(core::fault_plan::from_json_text("not json"),
               std::invalid_argument);
  EXPECT_THROW(core::fault_plan::from_json_text("{\"events\":7}"),
               std::invalid_argument);
  EXPECT_THROW(core::fault_plan::from_json_text(
                   "{\"events\":[{\"kind\":\"warp\",\"round\":1}]}"),
               std::invalid_argument);
  EXPECT_THROW(core::fault_plan::from_json_text(
                   "{\"events\":[{\"kind\":\"crash\"}]}"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ValidationCatchesBadEvents) {
  const std::size_t n = 8;
  const std::size_t q = 7;
  {
    core::fault_plan plan;
    plan.crash(1, 8);  // node out of range
    EXPECT_THROW(plan.validate(n, q), std::invalid_argument);
  }
  {
    core::fault_plan plan;
    plan.crash_as(1, 0, 7);  // state out of range
    EXPECT_THROW(plan.validate(n, q), std::invalid_argument);
  }
  {
    core::fault_plan plan;
    plan.add_edge(1, 3, 3);  // self-loop
    EXPECT_THROW(plan.validate(n, q), std::invalid_argument);
  }
  {
    core::fault_plan plan;
    plan.inject(0, std::vector<state_id>(n - 1, 0));  // wrong size
    EXPECT_THROW(plan.validate(n, q), std::invalid_argument);
  }
  EXPECT_NO_THROW(every_kind_plan().validate(n, q));
}

// ---- faulted replay + sharding ---------------------------------------

TEST(RecoveryHarnessTest, MeasuresBurstEpochsDeterministically) {
  const auto g = graph::make_grid(8, 8);
  const core::bfw_machine machine(0.5);
  core::fault_plan plan;
  plan.name = "burst";
  plan.fault_seed = 3;
  plan.burst(64, 5, 24);
  analysis::recovery_options options;
  options.max_rounds = 50'000;
  const auto first = analysis::measure_recovery(g, machine, plan, 77, options);
  EXPECT_GE(first.epochs(), 1U);
  EXPECT_GE(first.faults_applied, 5U);
  ASSERT_FALSE(first.points.empty());
  EXPECT_EQ(first.points[0].fault_round, 0U);  // initial convergence epoch

  // Bit-exact replay: same (plan, seed) - identical epochs, identical
  // final state, on a different gear and under tiling.
  for (const gear_config& gear : all_gears()) {
    analysis::recovery_options again = options;
    again.fast_path = gear.fast;
    again.compiled_kernel = gear.compiled;
    again.exec = {gear.threads, gear.tile_words};
    const auto replay = analysis::measure_recovery(g, machine, plan, 77, again);
    ASSERT_EQ(replay.points.size(), first.points.size()) << gear.label;
    for (std::size_t i = 0; i < first.points.size(); ++i) {
      EXPECT_EQ(replay.points[i].fault_round, first.points[i].fault_round)
          << gear.label;
      EXPECT_EQ(replay.points[i].recovered, first.points[i].recovered)
          << gear.label;
      EXPECT_EQ(replay.points[i].rounds_to_recover,
                first.points[i].rounds_to_recover)
          << gear.label;
    }
    EXPECT_EQ(replay.outcome.rounds, first.outcome.rounds) << gear.label;
    EXPECT_EQ(replay.outcome.total_coins, first.outcome.total_coins)
        << gear.label;
    EXPECT_EQ(replay.faults_applied, first.faults_applied) << gear.label;
  }
}

TEST(FaultedSweepTest, ShardedFaultedSweepMergesBitIdentical) {
  core::fault_plan plan;
  plan.name = "burst";
  plan.fault_seed = 9;
  plan.burst(32, 4, 16);
  const auto inst = analysis::make_instance(graph::make_path(33));
  std::vector<analysis::matrix_cell> cells;
  cells.push_back({&inst, analysis::make_faulted_bfw(0.5, plan), 6, 51,
                   200'000});
  const sweep::spec spec{"faulted_sweep_test", std::move(cells)};

  const auto reference = sweep::run(spec, {});
  ASSERT_EQ(reference.cells.size(), 1U);

  std::vector<std::string> paths;
  for (std::uint64_t i = 0; i < 3; ++i) {
    const std::string path = ::testing::TempDir() + "beepkit_faulted_shard_" +
                             std::to_string(i) + ".jsonl";
    std::remove(path.c_str());
    sweep::options opts;
    opts.shard = {i, 3};
    opts.jsonl_path = path;
    (void)sweep::run(spec, opts);
    paths.push_back(path);
  }
  const auto merged = sweep::merge_shards(paths);
  ASSERT_EQ(merged.cells.size(), 1U);
  const auto& a = merged.cells[0].stats;
  const auto& b = reference.cells[0];
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_EQ(a.rounds.median, b.rounds.median);
  EXPECT_EQ(a.mean_coins_per_node_round, b.mean_coins_per_node_round);
  for (const auto& path : paths) std::remove(path.c_str());
}

// ---- adversaries ------------------------------------------------------

TEST(AdversaryTest, WaveJammerPreventsElimination) {
  const auto g = graph::make_complete(12);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 8);
  core::fault_plan plan;
  core::fault_session session(plan, sim, 8);
  const auto jammer = core::make_wave_jammer();
  session.set_adversary(jammer.get());
  for (int r = 0; r < 256; ++r) session.step();
  // Nobody ever hears a rival, so nobody is ever eliminated.
  EXPECT_EQ(sim.leader_count(), 12U);
}

TEST(AdversaryTest, SpuriousWakerIsDeterministic) {
  const auto g = graph::make_path(48);
  const core::bfw_machine machine(0.5);
  std::vector<std::uint64_t> rounds;
  std::vector<std::uint64_t> coins;
  for (int repeat = 0; repeat < 2; ++repeat) {
    fsm_protocol proto(machine);
    engine sim(g, proto, 12);
    core::fault_plan plan;
    core::fault_session session(plan, sim, 12);
    const auto waker = core::make_spurious_waker(2, 5);
    session.set_adversary(waker.get());
    const auto result = session.run_until_single_leader(500'000);
    rounds.push_back(result.rounds);
    coins.push_back(sim.total_coins_consumed());
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(coins[0], coins[1]);
}

TEST(AdversaryTest, DetachRestoresPlainBehavior) {
  const auto g = graph::make_path(32);
  const core::bfw_machine machine(0.5);
  fsm_protocol plain_proto(machine);
  engine plain(g, plain_proto, 4);
  const auto expected = plain.run_until_single_leader(200'000);

  fsm_protocol proto(machine);
  engine sim(g, proto, 4);
  core::fault_plan plan;
  core::fault_session session(plan, sim, 4);
  const auto jammer = core::make_wave_jammer();
  session.set_adversary(jammer.get());
  session.set_adversary(nullptr);  // detach before any round
  const auto got = session.run_until_single_leader(200'000);
  EXPECT_EQ(got.rounds, expected.rounds);
  EXPECT_EQ(sim.total_coins_consumed(), plain.total_coins_consumed());
}

// ---- telemetry fault counters ----------------------------------------

TEST(FaultTelemetryTest, CountersTrackFaultsAndPatchedWords) {
  namespace tel = support::telemetry;
  if (!tel::compiled_in) GTEST_SKIP() << "telemetry compiled out";
  const auto g = graph::make_path(64);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 6);
  const bool was_enabled = tel::enabled();
  tel::set_enabled(true);
  graph::patch_overlay overlay{graph::topology_view(g)};
  overlay.add_edge(0, 63);
  sim.set_topology_patch(&overlay);
  sim.fault_crash(1);
  sim.fault_restart(1);
  for (int r = 0; r < 4; ++r) sim.step();
  const auto metrics = sim.telemetry_metrics();
  EXPECT_EQ(metrics.faults_applied, 2U);
  EXPECT_GT(metrics.fault_patched_words, 0U);
  tel::set_enabled(was_enabled);
}

}  // namespace
