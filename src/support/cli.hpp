// Minimal command-line flag parsing for the bench harnesses and
// examples: `--name=value` or `--name value` pairs plus boolean
// switches. Deliberately tiny - no positional arguments, no
// subcommands - because every binary in this repository only needs a
// handful of numeric knobs (sizes, seeds, trial counts, --csv paths).
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace beepkit::support {

/// A (start, stride) slice of a sweep: shard `index` of `count` owns
/// exactly the work units whose global index is congruent to `index`
/// modulo `count`. The default is the whole sweep (shard 0 of 1).
struct shard_spec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;

  [[nodiscard]] bool owns(std::uint64_t global_index) const noexcept {
    return global_index % count == index;
  }
  [[nodiscard]] bool whole() const noexcept { return count == 1; }
};

/// Parsed flags. Unknown flags are collected rather than rejected so a
/// harness can print a warning without aborting a long sweep.
class cli {
 public:
  /// `switches` names boolean flags that never consume a following
  /// argument as their value, so `prog --quiet file.jsonl` keeps
  /// file.jsonl as a positional. (`--flag=value` still works for
  /// switches.) Value flags keep the usual `--name value` form.
  cli(int argc, const char* const* argv,
      std::initializer_list<const char*> switches = {});

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Worker count for the parallel trial runner: `--threads N`, where
  /// N = 0 (and the flag's absence, with the default fallback of 0)
  /// means one worker per hardware thread. Always returns >= 1.
  [[nodiscard]] std::size_t get_threads(std::int64_t fallback = 0) const;

  /// Strict `i/N` shard parser: both parts must be plain decimal with
  /// nothing else, N >= 1 and i < N. Anything else yields nullopt.
  [[nodiscard]] static std::optional<shard_spec> parse_shard(
      const std::string& text);

  /// `--shard i/N` for the sweep runners; absence means the whole
  /// sweep. A malformed or out-of-range value terminates the process
  /// with a message on stderr - a sweep silently running the wrong
  /// slice would be worse than an aborted launch script.
  [[nodiscard]] shard_spec get_shard() const;

  /// Arguments that are neither `--flags` nor a flag's value, in
  /// command-line order (e.g. the input files of sweep_merge). A
  /// positional directly after a value-less flag NOT listed in
  /// `switches` is consumed as that flag's value - declare boolean
  /// flags as switches (or pass `--flag=value`) to avoid that.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// Flags that were present but never queried with one of the getters;
  /// useful for catching typos in sweep scripts.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace beepkit::support
