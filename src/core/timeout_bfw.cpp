#include "core/timeout_bfw.hpp"

#include <sstream>
#include <stdexcept>

namespace beepkit::core {

timeout_bfw_machine::timeout_bfw_machine(double p, std::uint32_t timeout)
    : p_(p), timeout_(timeout) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("timeout_bfw_machine: p must lie in (0, 1)");
  }
  if (timeout == 0) {
    throw std::invalid_argument("timeout_bfw_machine: timeout must be >= 1");
  }
}

beeping::state_id timeout_bfw_machine::delta_top(beeping::state_id state,
                                                 support::rng& /*rng*/) const {
  switch (state) {
    case leader_wait:
      return follower_beep;  // eliminated, relays once
    case leader_beep:
      return leader_frozen;
    case leader_frozen:
      return leader_wait;
    case follower_beep:
      return follower_frozen;
    case follower_frozen:
      return follower_wait_base;  // patience restarts at 0
    default:
      break;
  }
  if (state >= follower_wait_base && state < state_count()) {
    return follower_beep;  // relay; patience resets through Fo -> Wo(0)
  }
  throw std::invalid_argument("timeout_bfw_machine::delta_top: bad state");
}

beeping::state_id timeout_bfw_machine::delta_bot(beeping::state_id state,
                                                 support::rng& rng) const {
  switch (state) {
    case leader_wait:
      return rng.bernoulli(p_) ? leader_beep : leader_wait;
    case leader_beep:
      return leader_frozen;  // unreachable (beeping nodes take delta_top)
    case leader_frozen:
      return leader_wait;
    case follower_beep:
      return follower_frozen;  // unreachable
    case follower_frozen:
      return follower_wait_base;
    default:
      break;
  }
  if (state >= follower_wait_base && state < state_count()) {
    const std::uint32_t patience =
        static_cast<std::uint32_t>(state - follower_wait_base);
    if (patience + 1 >= timeout_) {
      return leader_wait;  // timed out: self-promotion
    }
    return static_cast<beeping::state_id>(state + 1);
  }
  throw std::invalid_argument("timeout_bfw_machine::delta_bot: bad state");
}

std::optional<beeping::machine_table> timeout_bfw_machine::compile_table()
    const {
  using rule = beeping::transition_rule;
  const std::size_t n = state_count();
  std::vector<rule> top(n);
  std::vector<rule> bot(n);
  top[leader_wait] = rule::det(follower_beep);
  top[leader_beep] = rule::det(leader_frozen);
  top[leader_frozen] = rule::det(leader_wait);
  top[follower_beep] = rule::det(follower_frozen);
  top[follower_frozen] = rule::det(follower_wait_base);
  bot[leader_wait] = rule::bernoulli_draw(p_, leader_beep, leader_wait);
  bot[leader_beep] = rule::det(leader_frozen);  // unreachable
  bot[leader_frozen] = rule::det(leader_wait);
  bot[follower_beep] = rule::det(follower_frozen);  // unreachable
  bot[follower_frozen] = rule::det(follower_wait_base);
  for (std::size_t s = follower_wait_base; s < n; ++s) {
    const std::uint32_t patience =
        static_cast<std::uint32_t>(s - follower_wait_base);
    top[s] = rule::det(follower_beep);
    bot[s] = rule::det(patience + 1 >= timeout_
                           ? leader_wait
                           : static_cast<beeping::state_id>(s + 1));
  }
  return beeping::build_machine_table(*this, bot, top);
}

std::string timeout_bfw_machine::state_name(beeping::state_id state) const {
  switch (state) {
    case leader_wait:
      return "W*";
    case leader_beep:
      return "B*";
    case leader_frozen:
      return "F*";
    case follower_beep:
      return "Bo";
    case follower_frozen:
      return "Fo";
    default:
      break;
  }
  if (state >= follower_wait_base && state < state_count()) {
    return "Wo(" + std::to_string(state - follower_wait_base) + ")";
  }
  return "?";
}

std::string timeout_bfw_machine::name() const {
  std::ostringstream out;
  out << "TimeoutBFW(p=" << p_ << ",T=" << timeout_ << ")";
  return out.str();
}

std::vector<beeping::state_id> timeout_bfw_machine::dead_configuration(
    std::size_t node_count) const {
  return std::vector<beeping::state_id>(node_count, follower_wait_base);
}

void stabilization_probe::observe(std::uint64_t round,
                                  std::size_t leader_count) noexcept {
  last_round_ = round;
  if (leader_count == 1) {
    if (!in_streak_) {
      current_ = {round, 0};
      in_streak_ = true;
    }
    ++current_.length;
  } else if (in_streak_) {
    completed_.push_back(current_);
    in_streak_ = false;
  }
}

stabilization_result stabilization_probe::result(
    std::uint64_t window) const noexcept {
  for (const auto& s : completed_) {
    if (s.length >= window + 1) {
      return {s.start, true};
    }
  }
  if (in_streak_ && current_.length >= window + 1) {
    return {current_.start, true};
  }
  return {last_round_, false};
}

}  // namespace beepkit::core
