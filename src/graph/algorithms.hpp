// BFS-based graph algorithms: distances, eccentricities, diameter,
// connectivity, and shortest paths. The paper's bounds are stated in
// terms of the diameter D, and the flow machinery (Section 3) operates
// on explicit vertex paths, so both are first-class here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace beepkit::graph {

/// Distance sentinel for unreachable nodes.
inline constexpr std::uint32_t unreachable = 0xffffffffU;

/// Single-source BFS distances (unreachable nodes get `unreachable`).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const graph& g,
                                                       node_id source);

/// True iff the graph is connected (vacuously true for n <= 1).
[[nodiscard]] bool is_connected(const graph& g);

/// Eccentricity of `source` (max BFS distance); graph must be
/// connected, otherwise returns `unreachable`.
[[nodiscard]] std::uint32_t eccentricity(const graph& g, node_id source);

/// Exact diameter via all-sources BFS: O(n(n+m)). Fine for the sizes
/// used in tests and experiments (n up to a few tens of thousands).
[[nodiscard]] std::uint32_t diameter_exact(const graph& g);

/// Lower bound on the diameter via a handful of double BFS sweeps;
/// equals the diameter on trees and is typically tight in practice.
/// O(k(n+m)).
[[nodiscard]] std::uint32_t diameter_double_sweep(const graph& g,
                                                  int sweeps = 4);

/// Full distance matrix (n x n); intended for test-sized graphs.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> distance_matrix(
    const graph& g);

/// One shortest path from u to v as a vertex sequence (u first), or
/// nullopt if v is unreachable. Ties broken toward smaller node ids.
[[nodiscard]] std::optional<std::vector<node_id>> shortest_path(
    const graph& g, node_id u, node_id v);

/// The d-neighborhood N_d(u) of Section 2: nodes at distance exactly d.
[[nodiscard]] std::vector<node_id> exact_distance_set(const graph& g,
                                                      node_id u,
                                                      std::uint32_t d);

}  // namespace beepkit::graph
