#include "analysis/wave_tracker.hpp"

#include "core/bfw.hpp"

namespace beepkit::analysis {

void wave_crash_tracker::on_round(const beeping::round_view& view) {
  const auto& states = proto_->states();
  const std::size_t n = states.size();
  colors_.assign(n, no_color);

  for (std::size_t u = 0; u < n; ++u) {
    if (!core::bfw_is_beeping(states[u])) continue;
    const bool is_leader_beep = core::bfw_is_leader_state(states[u]);
    if (is_leader_beep || !have_prev_) {
      // A source beep (or an injected round-0 beep): colored by side.
      colors_[u] = (2 * u < n) ? 0 : 1;
      continue;
    }
    // Relay: inherit the color(s) of the beeping neighbors last round.
    const std::int8_t left = u > 0 ? prev_colors_[u - 1] : no_color;
    const std::int8_t right = u + 1 < n ? prev_colors_[u + 1] : no_color;
    if (left != no_color && right != no_color && left != right) {
      // Head-on through a single waiting node (B W B): the two fronts
      // merge into one doomed relay - that is the crash.
      crashes_.push_back({view.round, static_cast<double>(u)});
      colors_[u] = merged;
    } else if (left != no_color) {
      colors_[u] = left;
    } else if (right != no_color) {
      colors_[u] = right;
    } else {
      // No beeping neighbor last round: a fresh source (e.g. a newly
      // eliminated leader's farewell beep) - color by side.
      colors_[u] = (2 * u < n) ? 0 : 1;
    }
  }

  // Adjacent opposite-colored fronts (B B): they freeze next round
  // with frozen tails behind them - annihilation between u and u+1.
  for (std::size_t u = 0; u + 1 < n; ++u) {
    const auto a = colors_[u];
    const auto b = colors_[u + 1];
    if ((a == 0 && b == 1) || (a == 1 && b == 0)) {
      crashes_.push_back({view.round, static_cast<double>(u) + 0.5});
    }
  }

  prev_colors_ = colors_;
  have_prev_ = true;
}

std::vector<double> mean_squared_displacement(
    std::span<const wave_crash> crashes, std::size_t max_lag) {
  std::vector<double> msd(max_lag + 1, 0.0);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    if (crashes.size() <= lag) break;
    double sum = 0.0;
    const std::size_t pairs = crashes.size() - lag;
    for (std::size_t i = 0; i < pairs; ++i) {
      const double d = crashes[i + lag].position - crashes[i].position;
      sum += d * d;
    }
    msd[lag] = sum / static_cast<double>(pairs);
  }
  return msd;
}

}  // namespace beepkit::analysis
