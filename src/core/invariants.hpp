// Runtime checkers for the paper's deterministic results (Section 3).
// Attached as engine observers, they confront every simulated round
// with:
//
//   * Claim 6, Eqs. (3)-(11): local state-transition facts relating
//     consecutive rounds (e.g. "beeping implies frozen next round").
//   * Lemma 9: the population always contains at least one leader, and
//     (a fact the convergence detector relies on) the leader count
//     never increases.
//   * Corollary 8 (Ohm's law): the flow along any path equals the
//     difference of the endpoint beep counts - checked on a sampled
//     path set each round.
//   * Lemma 11: |N_beep(u) - N_beep(v)| <= dis(u, v) for all pairs
//     (requires the distance matrix; intended for test-sized graphs).
//   * Lemma 12: if N_beep_t(u) > N_beep_t(v), then v beeps in some
//     round s <= t + dis(u, v) - tracked as deadline obligations.
//
// Violations are collected (not thrown) so tests can assert on them
// and failure-injection experiments can count them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "beeping/observer.hpp"
#include "beeping/protocol.hpp"
#include "core/flow.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepkit::core {

/// Which checks to run each round; the quadratic ones default off so
/// the checker can also ride along in larger benchmark runs.
struct invariant_options {
  bool check_claim6 = true;        ///< O(n + m) per round.
  bool check_leader_floor = true;  ///< O(1) per round (Lemma 9 + monotone).
  bool check_ohms_law = true;      ///< O(total path length) per round.
  bool check_lemma11 = false;      ///< O(n^2) per round; needs distances.
  bool check_lemma12 = false;      ///< O(pairs) per round; needs distances.
  std::size_t sampled_paths = 16;      ///< Paths for the Ohm's-law check.
  std::size_t sampled_path_length = 32;
  std::size_t lemma12_pairs = 32;      ///< Pairs tracked for Lemma 12.
  std::uint64_t path_sample_seed = 0x0bf1;
};

/// Observer validating BFW configurations round by round.
class invariant_checker final : public beeping::observer {
 public:
  /// `proto` must be an fsm_protocol over a BFW-shaped machine (six
  /// states with the bfw_state numbering).
  invariant_checker(const graph::graph& g, const beeping::fsm_protocol& proto,
                    invariant_options options = {});

  void on_round(const beeping::round_view& view) override;

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t rounds_checked() const noexcept {
    return rounds_checked_;
  }

 private:
  void check_claim6(const beeping::round_view& view);
  void check_leader_floor(const beeping::round_view& view);
  void check_ohms_law(const beeping::round_view& view);
  void check_lemma11(const beeping::round_view& view);
  void check_lemma12(const beeping::round_view& view);
  void report(std::uint64_t round, const std::string& message);

  const graph::graph* g_;
  const beeping::fsm_protocol* proto_;
  invariant_options options_;
  std::vector<vertex_path> paths_;
  std::vector<std::vector<std::uint32_t>> distances_;  // lazy, quadratic
  std::vector<beeping::state_id> previous_states_;
  std::vector<std::uint8_t> previous_beeping_;
  std::size_t previous_leader_count_ = 0;
  bool have_previous_ = false;

  struct obligation {
    graph::node_id debtor;      ///< Node that must beep...
    std::uint64_t deadline;     ///< ...no later than this round.
    std::uint64_t created_at;
    graph::node_id creditor;    ///< The u with the larger beep count.
  };
  std::vector<obligation> obligations_;

  std::vector<std::string> violations_;
  std::uint64_t rounds_checked_ = 0;
  static constexpr std::size_t max_violations = 64;
};

}  // namespace beepkit::core
