// Trace/series observer tests.
#include "beeping/trace.hpp"

#include <gtest/gtest.h>

#include "beeping/engine.hpp"
#include "core/bfw.hpp"
#include "graph/generators.hpp"

namespace beepkit::beeping {
namespace {

TEST(TraceRecorderTest, RecordsEveryRoundIncludingInitial) {
  const auto g = graph::make_path(5);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 1);
  trace_recorder trace(proto);
  sim.add_observer(&trace);
  sim.run_rounds(20);

  ASSERT_EQ(trace.recorded_rounds(), 21U);
  // Round 0: everyone in W•.
  for (state_id s : trace.states(0)) {
    EXPECT_EQ(s, static_cast<state_id>(core::bfw_state::leader_wait));
  }
  // Every recorded configuration has the right width.
  for (const auto& config : trace.history()) {
    EXPECT_EQ(config.size(), 5U);
  }
}

TEST(TraceRecorderTest, RespectsCap) {
  const auto g = graph::make_path(4);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 2);
  trace_recorder trace(proto, 8);
  sim.add_observer(&trace);
  sim.run_rounds(50);
  EXPECT_EQ(trace.recorded_rounds(), 8U);
}

TEST(TraceRecorderTest, AsciiRenderShowsBfwAlphabet) {
  const auto g = graph::make_path(6);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 3);
  trace_recorder trace(proto);
  sim.add_observer(&trace);
  sim.run_rounds(30);

  const std::string art = trace.render_ascii();
  EXPECT_NE(art.find('W'), std::string::npos);  // leaders waiting
  // A 30-round BFW run on a 6-path certainly relays some wave.
  EXPECT_TRUE(art.find('b') != std::string::npos ||
              art.find('B') != std::string::npos);
  // One line per recorded round.
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(lines, 31);
}

TEST(SeriesRecorderTest, TracksLeaderAndBeepSeries) {
  const auto g = graph::make_complete(10);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 4);
  series_recorder series;
  sim.add_observer(&series);
  const auto result = sim.run_until_single_leader(100000);
  ASSERT_TRUE(result.converged);

  ASSERT_EQ(series.leader_counts().size(), sim.round() + 1);
  EXPECT_EQ(series.leader_counts().front(), 10U);
  EXPECT_EQ(series.leader_counts().back(), 1U);
  EXPECT_EQ(series.first_single_leader_round(), sim.round());

  // Leader counts never increase along the way.
  for (std::size_t i = 1; i < series.leader_counts().size(); ++i) {
    EXPECT_LE(series.leader_counts()[i], series.leader_counts()[i - 1]);
  }
  // Beep totals line up 1:1 with rounds.
  EXPECT_EQ(series.beep_totals().size(), series.leader_counts().size());
  EXPECT_EQ(series.beep_totals().front(), 0U);  // all-W start is silent
}

TEST(SeriesRecorderTest, NposWhenNeverSingle) {
  const auto g = graph::make_path(30);
  const core::bfw_machine machine(0.5);
  fsm_protocol proto(machine);
  engine sim(g, proto, 6);
  series_recorder series;
  sim.add_observer(&series);
  sim.run_rounds(3);  // far too short to elect on a 30-path
  EXPECT_EQ(series.first_single_leader_round(), series_recorder::npos);
}

}  // namespace
}  // namespace beepkit::beeping
