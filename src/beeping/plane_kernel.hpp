// Compiled round-kernel registry: the dispatch point between the
// engine's interpreted plane gear and the ahead-of-time kernels
// emitted by tools/beepc.
//
// A compiled kernel is the plane sweep of ONE protocol structure with
// everything the interpreted gear reads from machine_table at runtime -
// state count, plane count, per-state decode targets, beep/leader/
// identity meta, patience-chain layout - baked in as constexpr
// (src/beeping/compiled_sweep.hpp instantiates the template per
// structure and SIMD width). Kernels are matched at engine bind time by
// *structure*, not by protocol instance: serialize_table_structure()
// captures exactly what the kernel bakes in and classifies every
// stochastic row uniformly (the kernel applies draws through the
// runtime rule table, so one BFW kernel serves every p, coin or
// bernoulli). The interpreted gear stays as the differential reference;
// a kernel is required to be draw-for-draw bit-identical to it.
//
// Registration is explicit: beepc emits one factory function per
// kernel plus a manifest TU whose ensure_builtin_kernels_registered()
// calls them all - static initializers would be dead-stripped out of
// the static library, an explicit call chain cannot be.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "beeping/protocol.hpp"
#include "support/rng.hpp"

namespace beepkit::beeping {

/// Everything a compiled sweep reads or writes, borrowed from the
/// engine for the duration of one round. Pointers are word arrays
/// (word w covers nodes [64w, 64w+63]); `planes`/`ledger` are arrays
/// of plane pointers. Display-mode sweeps (the stone-age engine) leave
/// `active`, `leader` and `ledger` null.
struct plane_ctx {
  const std::uint64_t* heard = nullptr;
  std::uint64_t* beep = nullptr;
  std::uint64_t* active = nullptr;
  std::uint64_t* leader = nullptr;
  std::uint64_t* const* planes = nullptr;
  std::uint64_t* const* ledger = nullptr;
  /// Per-node generator indirection: dense engines expose the raw
  /// stream array, giant engines the lazy cursor store (identical draw
  /// sequences either way).
  support::rng_source rngs;
  /// machine_table::rules.data() of the bound table: stochastic rows
  /// are applied per node through this, so the kernel structure stays
  /// independent of p / coin-vs-bernoulli.
  const transition_rule* rules = nullptr;
  std::uint64_t tail_mask = ~0ULL;
  std::size_t words = 0;
};

/// Per-tile partial results, folded by the caller (order-independent).
struct sweep_result {
  std::size_t leaders = 0;
  std::size_t active = 0;
};

/// Full-mode sweep over words [wb, we): the beeping engine's plane
/// round (chains, active set, leader words, beep ledger + `dirty`
/// slot-scratch marking). Tiles may run concurrently on disjoint
/// ranges.
using sweep_fn = sweep_result (*)(const plane_ctx&, std::uint64_t* dirty,
                                  std::size_t wb, std::size_t we);
/// Display-mode sweep (the stone-age engine): planes + heard ->
/// planes + beep + leader count, no active/leader/ledger upkeep.
using display_sweep_fn = sweep_result (*)(const plane_ctx&, std::size_t wb,
                                          std::size_t we);

/// Width variants a kernel carries: W words per vector op.
inline constexpr std::size_t kernel_widths[] = {1, 2, 4, 8};
inline constexpr std::size_t kernel_width_slots = 4;
[[nodiscard]] constexpr std::size_t kernel_width_slot(
    std::size_t width) noexcept {
  return width == 8 ? 3 : width == 4 ? 2 : width == 2 ? 1 : 0;
}

// Constexpr record types the generated Traits blocks are built from
// (see compiled_sweep.hpp for how the sweep consumes them).
/// One compiled transition row: a deterministic successor, or a
/// reference (`draw`) into the kernel's stochastic-slot list.
struct kernel_rule {
  bool stochastic = false;
  state_id next = 0;     ///< successor when !stochastic
  std::uint8_t draw = 0; ///< index into Traits::draw_slots otherwise
};
/// One bit-sliced-counter run (mirrors engine::plane_chain).
struct kernel_chain {
  state_id first = 0;
  state_id last = 0;
  state_id top_next = 0;
  std::uint8_t meta = 0;
};

/// One registered kernel: the structure it serves plus its sweep
/// entry points, indexed by kernel_width_slot().
struct compiled_kernel {
  std::string name;       ///< beepc kernel name (bench/test labels)
  std::string structure;  ///< serialize_table_structure() of the source
  std::size_t state_count = 0;
  std::size_t plane_count = 0;
  sweep_fn sweep[kernel_width_slots] = {};
  display_sweep_fn display[kernel_width_slots] = {};
};

/// Canonical structural form of a compiled table: state count, per-state
/// meta byte, and both transition rows - deterministic rows with their
/// successor, stochastic rows classified uniformly as "r" (their
/// successors and parameter are runtime data the kernel reads through
/// plane_ctx::rules). Two tables with equal strings are served by the
/// same kernel, bit for bit.
[[nodiscard]] std::string serialize_table_structure(const machine_table& table);

/// Registers a kernel (later registrations of an equal structure win;
/// beepc never emits duplicates).
void register_compiled_kernel(const compiled_kernel& kernel);

/// Bind-time lookup: the kernel whose structure matches `table`, or
/// nullptr (interpreted gear only). Triggers builtin registration.
[[nodiscard]] const compiled_kernel* find_compiled_kernel(
    const machine_table& table);

/// All registered kernels, registration order (tools/tests).
[[nodiscard]] std::vector<const compiled_kernel*> list_compiled_kernels();

/// Defined by the beepc-generated manifest
/// (src/beeping/kernels/manifest.gen.cpp): registers every checked-in
/// generated kernel exactly once. Safe to call repeatedly.
void ensure_builtin_kernels_registered();

}  // namespace beepkit::beeping
