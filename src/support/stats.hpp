// Small statistics toolbox used by the experiment harness: summary
// statistics, quantiles, Welford running accumulation, and least-squares
// fits (linear and log-log) for the scaling analyses of Theorems 2/3 and
// the Section-5 tightness conjecture.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace beepkit::support {

/// Five-number-style summary of a sample.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
  double q95 = 0.0;
};

/// Computes a full summary; empty input yields a zeroed summary.
[[nodiscard]] summary summarize(std::span<const double> values);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Welford online mean/variance accumulator.
class running_stats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1); zero when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ordinary least squares fit y = intercept + slope * x.
struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fits y against x; both spans must have equal size >= 2.
[[nodiscard]] linear_fit fit_linear(std::span<const double> x,
                                    std::span<const double> y);

/// Fits log(y) against log(x): the returned slope is the empirical
/// polynomial exponent (e.g. ~2 for Theta(D^2) data). All inputs must
/// be strictly positive.
[[nodiscard]] linear_fit fit_loglog(std::span<const double> x,
                                    std::span<const double> y);

/// Pearson correlation coefficient; NaN-free (returns 0 for degenerate
/// inputs).
[[nodiscard]] double correlation(std::span<const double> x,
                                 std::span<const double> y);

/// Histogram with uniform bins over [lo, hi]; values outside are
/// clamped into the edge bins.
struct histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  histogram(double low, double high, std::size_t bin_count);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t total() const noexcept;
  /// Fraction of mass in bin i.
  [[nodiscard]] double fraction(std::size_t i) const noexcept;
};

}  // namespace beepkit::support
