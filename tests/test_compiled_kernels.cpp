// Differential tests for the beepc-compiled round kernels: a compiled
// sweep is required to be draw-for-draw bit-identical to the
// interpreted plane gear (and hence to the virtual reference) on every
// (kernel, SIMD width, graph, seed, noise) combination - same state
// trajectories, same leader counts, same beep ledgers, same generator
// draws. Word-boundary sizes {63, 64, 65, 128} exercise the batch
// tails; widths {1, 2, 4, 8} cover every wordvec instantiation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "beeping/engine.hpp"
#include "beeping/plane_kernel.hpp"
#include "core/ablations.hpp"
#include "core/adversarial.hpp"
#include "core/bfw.hpp"
#include "core/bfw_stoneage.hpp"
#include "core/timeout_bfw.hpp"
#include "graph/generators.hpp"
#include "stoneage/stoneage.hpp"

namespace beepkit {
namespace {

using beeping::engine;
using beeping::fsm_protocol;
using beeping::noise_model;
using beeping::state_id;

constexpr std::size_t kernel_widths[] = {1, 2, 4, 8};

struct graph_case {
  std::string label;
  graph::graph g;
};

std::vector<graph_case> word_boundary_graphs() {
  std::vector<graph_case> cases;
  for (const std::size_t n : {63U, 64U, 65U, 128U}) {
    cases.push_back({"path" + std::to_string(n), graph::make_path(n)});
    cases.push_back({"tree" + std::to_string(n),
                     graph::make_complete_binary_tree(n)});
    cases.push_back({"complete" + std::to_string(n), graph::make_complete(n)});
  }
  return cases;
}

/// Runs `rounds` rounds on two engines over the same machine and seed -
/// one dispatching to the compiled kernel at `width`, one pinned to the
/// interpreted plane gear - and compares the full trace plus the next
/// raw draw of every per-node generator.
void expect_compiled_matches_interpreted(const graph::graph& g,
                                         const beeping::state_machine& machine,
                                         std::uint64_t seed, int rounds,
                                         const noise_model& noise,
                                         std::size_t width,
                                         const std::string& label) {
  fsm_protocol compiled_proto(machine);
  fsm_protocol ref_proto(machine);
  engine compiled(g, compiled_proto, seed, noise);
  engine ref(g, ref_proto, seed, noise);
  ASSERT_TRUE(compiled.compiled_kernel_active()) << label;
  compiled.set_compiled_width(width);
  ref.set_compiled_kernel_enabled(false);
  ASSERT_FALSE(ref.compiled_kernel_active()) << label;
  for (int round = 0; round < rounds; ++round) {
    compiled.step();
    ref.step();
    ASSERT_EQ(compiled_proto.states(), ref_proto.states())
        << label << " w=" << width << " diverged at round " << round;
    ASSERT_EQ(compiled.leader_count(), ref.leader_count())
        << label << " w=" << width;
  }
  ASSERT_GT(compiled.compiled_rounds(), 0U) << label;
  EXPECT_EQ(ref.compiled_rounds(), 0U) << label;
  for (graph::node_id u = 0; u < g.node_count(); ++u) {
    ASSERT_EQ(compiled.beep_count(u), ref.beep_count(u))
        << label << " ledger mismatch at node " << u;
  }
  EXPECT_EQ(compiled.total_coins_consumed(), ref.total_coins_consumed())
      << label;
  for (graph::node_id u = 0; u < g.node_count(); ++u) {
    ASSERT_EQ(compiled.node_rng(u).next_u64(), ref.node_rng(u).next_u64())
        << label << " generator diverged at node " << u;
  }
}

TEST(CompiledKernelDifferentialTest, BfwAllWidthsAllGraphs) {
  const core::bfw_machine machine(0.5);
  for (const std::size_t width : kernel_widths) {
    for (const auto& c : word_boundary_graphs()) {
      expect_compiled_matches_interpreted(c.g, machine, 1234, 250, {}, width,
                                          c.label);
    }
  }
}

TEST(CompiledKernelDifferentialTest, BfwBernoulliMatchesThroughRuleTable) {
  // p != 1/2 swaps the coin rule for bernoulli; the kernel structure is
  // unchanged (stochastic rows are runtime data), so the same compiled
  // kernel must serve it bit for bit.
  const core::bfw_machine machine(0.3);
  for (const std::size_t width : kernel_widths) {
    expect_compiled_matches_interpreted(graph::make_path(65), machine, 99, 250,
                                        {}, width, "path65");
    expect_compiled_matches_interpreted(graph::make_grid(8, 16), machine, 99,
                                        250, {}, width, "grid8x16");
  }
}

TEST(CompiledKernelDifferentialTest, BfwWithReceptionNoise) {
  const core::bfw_machine machine(0.5);
  const noise_model noise{0.1, 0.05};
  for (const std::size_t width : kernel_widths) {
    for (const auto& c : word_boundary_graphs()) {
      expect_compiled_matches_interpreted(c.g, machine, 7, 200, noise, width,
                                          c.label);
    }
  }
}

TEST(CompiledKernelDifferentialTest, TimeoutBfwPatienceChain) {
  // T = 9 is the checked-in chain kernel (14 states, 4 planes); the
  // bit-sliced ripple-carry tick must match the interpreted chain.
  const core::timeout_bfw_machine machine(0.5, 9);
  for (const std::size_t width : kernel_widths) {
    for (const auto& c : word_boundary_graphs()) {
      expect_compiled_matches_interpreted(c.g, machine, 5, 250, {}, width,
                                          c.label);
    }
  }
}

TEST(CompiledKernelDifferentialTest, BwAblationExtinction) {
  const core::bw_machine machine(0.5);
  for (const std::size_t width : kernel_widths) {
    for (const auto& c : word_boundary_graphs()) {
      expect_compiled_matches_interpreted(c.g, machine, 31, 250, {}, width,
                                          c.label);
    }
  }
}

TEST(CompiledKernelDifferentialTest, MatchesVirtualReferenceDirectly) {
  // Close the triangle: compiled against the virtual-dispatch gear, not
  // just against the interpreted plane sweep.
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(8, 16);
  fsm_protocol compiled_proto(machine);
  fsm_protocol virtual_proto(machine);
  engine compiled(g, compiled_proto, 17);
  engine ref(g, virtual_proto, 17);
  ref.set_fast_path_enabled(false);
  ASSERT_TRUE(compiled.compiled_kernel_active());
  for (int round = 0; round < 300; ++round) {
    compiled.step();
    ref.step();
    ASSERT_EQ(compiled_proto.states(), virtual_proto.states())
        << "diverged at round " << round;
  }
  EXPECT_EQ(compiled.total_coins_consumed(), ref.total_coins_consumed());
}

TEST(CompiledKernelDifferentialTest, AdversarialInjectionsMatch) {
  // Section-5 configurations injected mid-run on both gears.
  const core::bfw_machine machine(0.5);
  struct injection {
    std::string label;
    graph::graph g;
    std::vector<state_id> states;
  };
  std::vector<injection> cases;
  cases.push_back({"two-leaders-path128", graph::make_path(128),
                   core::two_leaders_at_path_ends(128)});
  cases.push_back({"leaderless-wave-cycle64", graph::make_cycle(64),
                   core::leaderless_wave_on_cycle(64)});
  support::rng seeder(3);
  cases.push_back({"random-leaders-grid8x8", graph::make_grid(8, 8),
                   core::random_leader_configuration(64, 5, seeder)});
  for (const std::size_t width : kernel_widths) {
    for (auto& c : cases) {
      fsm_protocol compiled_proto(machine);
      fsm_protocol ref_proto(machine);
      engine compiled(c.g, compiled_proto, 11);
      engine ref(c.g, ref_proto, 11);
      compiled.set_compiled_width(width);
      ref.set_compiled_kernel_enabled(false);
      compiled.run_rounds(50);
      ref.run_rounds(50);
      compiled_proto.set_states(c.states);
      ref_proto.set_states(c.states);
      compiled.restart_from_protocol();
      ref.restart_from_protocol();
      for (int round = 0; round < 250; ++round) {
        compiled.step();
        ref.step();
        ASSERT_EQ(compiled_proto.states(), ref_proto.states())
            << c.label << " w=" << width << " diverged at round " << round;
        ASSERT_EQ(compiled.leader_count(), ref.leader_count()) << c.label;
      }
      for (graph::node_id u = 0; u < c.g.node_count(); ++u) {
        ASSERT_EQ(compiled.beep_count(u), ref.beep_count(u)) << c.label;
      }
    }
  }
}

TEST(CompiledKernelDifferentialTest, ToggleMidRunNeverChangesNumbers) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(8, 16);
  fsm_protocol toggling_proto(machine);
  fsm_protocol steady_proto(machine);
  engine toggling(g, toggling_proto, 77);
  engine steady(g, steady_proto, 77);
  for (int round = 0; round < 300; ++round) {
    toggling.set_compiled_kernel_enabled(round % 3 != 0);
    toggling.step();
    steady.step();
    ASSERT_EQ(toggling_proto.states(), steady_proto.states())
        << "diverged at round " << round;
  }
  EXPECT_EQ(toggling.total_coins_consumed(), steady.total_coins_consumed());
}

TEST(CompiledKernelDifferentialTest, TiledParallelismStaysBitIdentical) {
  // Compiled sweeps tile exactly like the interpreted gear: every
  // (threads, tile_words) point is bit-identical to serial.
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(16, 16);
  fsm_protocol serial_proto(machine);
  engine serial(g, serial_proto, 5);
  serial.run_rounds(300);
  for (const std::size_t threads : {2U, 3U}) {
    for (const std::size_t tile_words : {0U, 1U}) {
      fsm_protocol tiled_proto(machine);
      engine tiled(g, tiled_proto, 5);
      tiled.set_parallelism(threads, tile_words);
      tiled.run_rounds(300);
      ASSERT_EQ(tiled_proto.states(), serial_proto.states())
          << "threads=" << threads << " tile_words=" << tile_words;
      ASSERT_EQ(tiled.leader_count(), serial.leader_count());
    }
  }
}

// --- Stone-age engine: compiled display kernels ---

TEST(StoneAgeCompiledKernelTest, MatchesInterpretedAllWidths) {
  const core::bfw_stone_automaton automaton(0.5);
  for (const std::size_t width : kernel_widths) {
    for (const std::size_t n : {63U, 64U, 65U, 128U}) {
      const auto g = graph::make_path(n);
      stoneage::engine compiled(g, automaton, 1, 21);
      stoneage::engine ref(g, automaton, 1, 21);
      ASSERT_TRUE(compiled.compiled_kernel_active());
      compiled.set_compiled_width(width);
      ref.set_compiled_kernel_enabled(false);
      ASSERT_FALSE(ref.compiled_kernel_active());
      for (int round = 0; round < 250; ++round) {
        compiled.step();
        ref.step();
        ASSERT_EQ(compiled.states(), ref.states())
            << "n=" << n << " w=" << width << " diverged at round " << round;
        ASSERT_EQ(compiled.leader_count(), ref.leader_count()) << "n=" << n;
      }
      ASSERT_GT(compiled.compiled_rounds(), 0U);
      EXPECT_EQ(ref.compiled_rounds(), 0U);
    }
  }
}

TEST(StoneAgeCompiledKernelTest, MatchesGenericVirtualPath) {
  const core::bfw_stone_automaton automaton(0.5);
  const auto g = graph::make_grid(8, 8);
  stoneage::engine compiled(g, automaton, 1, 5);
  stoneage::engine ref(g, automaton, 1, 5);
  ref.set_fast_path_enabled(false);
  ASSERT_TRUE(compiled.compiled_kernel_active());
  for (int round = 0; round < 200; ++round) {
    compiled.step();
    ref.step();
    ASSERT_EQ(compiled.states(), ref.states()) << "diverged at round " << round;
  }
}

// --- Registry and engine introspection ---

TEST(KernelRegistryTest, BuiltinKernelsRegistered) {
  const auto kernels = beeping::list_compiled_kernels();
  ASSERT_GE(kernels.size(), 3U);
  std::vector<std::string> names;
  names.reserve(kernels.size());
  for (const auto* k : kernels) names.push_back(k->name);
  EXPECT_NE(std::find(names.begin(), names.end(), "bfw"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "timeout_bfw_t9"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bw"), names.end());
  for (const auto* k : kernels) {
    for (std::size_t slot = 0; slot < beeping::kernel_width_slots; ++slot) {
      EXPECT_NE(k->sweep[slot], nullptr) << k->name;
      EXPECT_NE(k->display[slot], nullptr) << k->name;
    }
  }
}

TEST(KernelRegistryTest, StructureMatchIsParameterIndependent) {
  // One BFW kernel serves every p: the structure string classifies
  // stochastic rows uniformly, so p = 0.25 (bernoulli) binds the same
  // kernel as p = 0.5 (fair coin).
  const auto table_half = core::bfw_machine(0.5).compile_table();
  const auto table_quarter = core::bfw_machine(0.25).compile_table();
  ASSERT_TRUE(table_half.has_value());
  ASSERT_TRUE(table_quarter.has_value());
  EXPECT_EQ(beeping::serialize_table_structure(*table_half),
            beeping::serialize_table_structure(*table_quarter));
  const auto* k_half = beeping::find_compiled_kernel(*table_half);
  const auto* k_quarter = beeping::find_compiled_kernel(*table_quarter);
  ASSERT_NE(k_half, nullptr);
  EXPECT_EQ(k_half, k_quarter);
  EXPECT_EQ(k_half->name, "bfw");
}

TEST(KernelRegistryTest, UnservedStructureBindsNoKernel) {
  // Timeout-BFW with T = 7 has 12 states - no checked-in kernel; the
  // engine must fall back to the interpreted gear silently.
  const core::timeout_bfw_machine machine(0.5, 7);
  const auto table = machine.compile_table();
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(beeping::find_compiled_kernel(*table), nullptr);
  const auto g = graph::make_path(64);
  fsm_protocol proto(machine);
  engine sim(g, proto, 1);
  EXPECT_FALSE(sim.compiled_kernel_active());
  EXPECT_EQ(sim.compiled_kernel_name(), "");
  sim.run_rounds(50);
  EXPECT_EQ(sim.compiled_rounds(), 0U);
}

TEST(KernelRegistryTest, EngineIntrospection) {
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(64);
  fsm_protocol proto(machine);
  engine sim(g, proto, 1);
  EXPECT_TRUE(sim.compiled_kernel_active());
  EXPECT_EQ(sim.compiled_kernel_name(), "bfw");
  sim.run_rounds(50);
  EXPECT_GT(sim.compiled_rounds(), 0U);
  sim.set_compiled_kernel_enabled(false);
  EXPECT_FALSE(sim.compiled_kernel_active());
  EXPECT_EQ(sim.compiled_kernel_name(), "bfw");  // still bound, just off
  EXPECT_THROW(sim.set_compiled_width(3), std::invalid_argument);
  EXPECT_THROW(sim.set_compiled_width(0), std::invalid_argument);
  sim.set_compiled_width(2);
  EXPECT_EQ(sim.compiled_width(), 2U);
}

}  // namespace
}  // namespace beepkit
