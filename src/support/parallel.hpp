// Small thread-pool executor for the experiment layer.
//
// Design goals, in order: (1) determinism of callers must be easy -
// the pool never decides *what* a work item computes, only *when* it
// runs, so a caller that pre-derives all randomness and writes results
// into per-index slots gets bit-identical output for any thread count;
// (2) dynamic load balancing - Monte-Carlo trials have wildly varying
// durations (a stuck election runs to the horizon), so indices are
// claimed from a shared atomic counter rather than pre-chunked;
// (3) zero dependencies beyond <thread>.
//
// Thread-safety contract for RNG/coin accounting (see support/rng.hpp):
// an `rng` is NOT thread-safe; every parallel work item must own its
// generators, and per-trial coin counts are summed by the caller after
// the join barrier - never through shared mutable state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace beepkit::support {

/// Resolves a user-facing `--threads` value: 0 means "one per hardware
/// thread", anything else is clamped to at least 1.
[[nodiscard]] std::size_t resolve_threads(std::int64_t requested) noexcept;

/// Fixed-size pool of worker threads with a shared task queue.
/// Tasks are `void()` closures; `wait_idle` is the join barrier.
class thread_pool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency). A pool with
  /// one worker still runs tasks off the calling thread, which keeps
  /// the execution model uniform; use `parallel_for` with threads == 1
  /// for a true inline serial path.
  explicit thread_pool(std::size_t threads = 0);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Tasks must not submit to the same pool and then
  /// block on wait_idle (no recursive joins).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. If any
  /// task threw, rethrows the first exception (by submission-drain
  /// order) here.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [0, count). With threads <= 1 this is a
/// plain inline loop (no pool, no atomics); otherwise indices are
/// claimed dynamically by `threads` workers. The body must be safe to
/// call concurrently for distinct indices; the call returns after all
/// indices completed (join barrier) and rethrows the first exception
/// any body raised.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace beepkit::support
