// JSONL record schema for sweep shards, plus the reader/merger that
// turns N shard files back into the exact single-process aggregates.
//
// A shard file is a sequence of single-line JSON records:
//
//   {"type":"sweep", "name":..., "shard_index":i, "shard_count":N,
//    "cells":M, "total_units":T, "format_version":1}
//   {"type":"cell", "cell":c, "algorithm":..., "graph":..., "n":...,
//    "diameter":..., "trials":..., "seed":..., "max_rounds":...}   (x M)
//   {"type":"trial", "cell":c, "trial":t, "global":g, "algorithm":...,
//    "graph":..., "n":..., "diameter":..., "seed":..., "rounds":...,
//    "converged":..., "coins":..., "leader":...}                   (streamed)
//   {"type":"checkpoint", "units_done":..., "units_owned":...}     (periodic)
//   {"type":"cell_summary", "cell":c, ...shard-local aggregates}   (x M)
//   {"type":"done", "units_run":..., "units_resumed":...}
//
// Trial records are self-describing (they repeat the cell's identity)
// so a single grep/jq pass over any shard file yields analyzable
// trajectories without a side table. All integer fields - seeds, coin
// counts, round counts - round-trip exactly through support::json;
// that exactness is what lets `merge_shards` re-run the shared
// analysis::aggregate_trial_points fold and land on bit-identical
// doubles. A file without a "done" record is a crashed/partial shard;
// both readers tolerate torn lines (every complete record is
// self-contained, and the merge's completeness check catches any unit
// a crash actually lost).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiment.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

namespace beepkit::sweep {

/// Cell identity + trial plan as recorded in a shard file header.
struct cell_record {
  std::uint64_t cell = 0;
  std::string algorithm;
  std::string graph;
  std::uint64_t n = 0;
  std::uint32_t diameter = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;       ///< Cell root seed (trial seeds derive from it).
  std::uint64_t max_rounds = 0;

  friend bool operator==(const cell_record&, const cell_record&) = default;
};

/// One executed trial as recorded in a shard file.
struct trial_record {
  std::uint64_t cell = 0;
  std::uint64_t trial = 0;
  std::uint64_t global = 0;
  std::uint64_t seed = 0;
  std::uint64_t rounds = 0;
  bool converged = false;
  std::uint64_t coins = 0;
  std::uint64_t leader = 0;  ///< Meaningful only when converged.

  friend bool operator==(const trial_record&, const trial_record&) = default;
};

/// Execution metadata for one trial record (Satellite audit trail):
/// which heard-gather kernel the engine actually ran and the
/// intra-trial tile/thread configuration. Serialized as extra JSON
/// fields; readers ignore them, so old files and the merge/resume
/// paths are unaffected.
struct trial_exec {
  std::string gather_kernel;
  std::uint64_t threads = 1;
  std::uint64_t tile_words = 0;
};

/// Streams one shard's records to disk through a buffered writer
/// thread: the producer (the aggregation thread - this class is still
/// single-producer) serializes records into an in-memory queue and a
/// background thread performs the actual ofstream writes, so the
/// serializer never stalls trial aggregation at high trials/sec. Error
/// semantics are unchanged: flush() drains the queue synchronously and
/// healthy() reflects every write that already hit the stream, so
/// disk-full and quota failures still surface as errors at checkpoint
/// boundaries, not silence. Always truncates: resumed runs rewrite the
/// file (header + salvaged records) rather than appending, so output
/// is always well-formed.
class record_writer {
 public:
  record_writer() = default;
  ~record_writer();

  record_writer(const record_writer&) = delete;
  record_writer& operator=(const record_writer&) = delete;

  /// Opens `path` and starts the writer thread. Truncates by default
  /// (resumed sweeps rewrite the file so output is always well-formed);
  /// `append == true` keeps the existing contents and adds records at
  /// the end - the giant-trial checkpoint stream (core/giant.hpp)
  /// appends snapshots to one growing journal across interruptions.
  /// Returns false when the file cannot be opened.
  [[nodiscard]] bool open(const std::string& path, bool append = false);
  [[nodiscard]] bool is_open() const noexcept { return opened_; }

  void write_header(const std::string& sweep_name, support::shard_spec shard,
                    std::uint64_t cell_count, std::uint64_t total_units);
  void write_cell(const cell_record& cell);
  void write_trial(const trial_record& trial, const cell_record& meta);
  /// Same, with the execution audit fields appended.
  void write_trial(const trial_record& trial, const cell_record& meta,
                   const trial_exec& exec);
  void write_checkpoint(std::uint64_t units_done, std::uint64_t units_owned);
  void write_cell_summary(const analysis::trial_stats& stats,
                          std::uint64_t cell);
  void write_done(std::uint64_t units_run, std::uint64_t units_resumed);
  /// Streams an arbitrary record through the same queue (used by the
  /// giant-trial checkpoint journal, whose record types live in
  /// core/giant.cpp rather than here).
  void write_record(const support::json& record);
  /// Drains the queue (synchronous barrier) and flushes the stream.
  void flush();

  /// False once any write has failed (disk full, quota, ...); callers
  /// check after flush points so losses surface as errors, not
  /// silence.
  [[nodiscard]] bool healthy() const noexcept {
    return ok_.load(std::memory_order_acquire);
  }
  /// Drains, flushes and closes; false when any write failed.
  [[nodiscard]] bool close();

  /// Total wall time producers spent blocked in enqueue() because the
  /// queue was at its backpressure bound. Valid any time, including
  /// after close(); folded into the sweep telemetry snapshot.
  [[nodiscard]] double stall_seconds();
  /// High-water mark of the queue depth (lines), for sizing the bound.
  [[nodiscard]] std::size_t max_queue_depth();

 private:
  void write_line(const support::json& record);
  void enqueue(std::string line);
  void drain();        ///< Blocks until the queue is empty + written.
  void stop_writer();  ///< Drains, then joins the writer thread.
  void writer_loop();

  std::ofstream out_;  // writer-thread-owned once the thread runs
  bool opened_ = false;
  std::thread writer_;
  std::mutex mutex_;
  std::condition_variable queue_ready_;
  std::condition_variable queue_drained_;
  std::vector<std::string> queue_;  // swapped out in batches, FIFO order
  bool writer_busy_ = false;
  bool stopping_ = false;
  std::atomic<bool> ok_{true};
  std::uint64_t stall_ns_ = 0;    // guarded by mutex_
  std::size_t max_depth_ = 0;     // guarded by mutex_
};

/// Fully parsed shard file (strict: the merge path). Throws
/// std::runtime_error with a line reference on malformed input.
struct shard_file {
  std::string sweep_name;
  support::shard_spec shard{};
  std::uint64_t total_units = 0;
  bool done = false;  ///< A "done" record was present (clean finish).
  std::uint64_t torn_lines = 0;  ///< Unparseable lines skipped (crash scars).
  std::vector<cell_record> cells;
  std::vector<trial_record> trials;
};

[[nodiscard]] shard_file read_shard_file(const std::string& path);

/// Lenient scan of an existing (possibly crashed) shard file for the
/// resume path: recorded trials keyed by global index. A torn trailing
/// line - the signature of a mid-write crash - is ignored; other
/// record types are skipped.
[[nodiscard]] std::map<std::uint64_t, trial_record> scan_trials(
    const std::string& path);

/// One merged cell: recorded identity plus the recomputed aggregates.
struct merged_cell {
  cell_record meta;
  analysis::trial_stats stats;
};

/// Result of merging shard files covering a sweep.
struct merge_result {
  std::string sweep_name;
  std::vector<merged_cell> cells;
  std::uint64_t units = 0;              ///< Distinct trials merged.
  std::uint64_t duplicate_records = 0;  ///< Identical duplicates tolerated.
};

/// Merges shard JSONL files into exactly the per-cell aggregates a
/// single-process run_matrix over the same spec would have produced
/// (bit-for-bit: the same analysis::aggregate_trial_points fold over
/// the same integer trial points in the same order). Throws
/// std::runtime_error on inconsistent cell metadata across files,
/// conflicting duplicate records, or missing units (an absent shard).
/// Identical duplicates - the overlap a resumed run can legitimately
/// produce - are tolerated and counted.
///
/// Memory: two streaming passes. Pass 1 checks coverage with one bit
/// per unit; pass 2 folds each cell via a k-way merge of the per-file
/// record streams, holding one record per file plus a single cell's
/// trial points - so merging a 1e8-unit sweep needs megabytes, not the
/// O(total units) record table the naive merge would build. Files with
/// out-of-order trial records (nothing our writer produces) fall back
/// to an in-memory sort of that file only.
[[nodiscard]] merge_result merge_shards(std::span<const std::string> paths);

/// Deterministic BENCH_*-style JSON summary of a merge: cell
/// identities plus every statistical aggregate, no timing fields, so
/// equal merges serialize byte-identically.
[[nodiscard]] support::json merge_summary(const merge_result& merged);

}  // namespace beepkit::sweep
