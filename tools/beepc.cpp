// beepc - the ahead-of-time protocol compiler.
//
// Consumes declarative protocol specs (core/protocol_spec.hpp: the
// bundled factories and/or JSON documents) and emits one C++ TU per
// protocol structure under --out-dir, each instantiating the templated
// SIMD round sweep (beeping/compiled_sweep.hpp) with the protocol's
// state count, plane count, transition masks, meta flags and
// patience-chain layout baked in as a constexpr Traits block, at every
// kernel width (1/2/4/8 words). A manifest TU defining
// ensure_builtin_kernels_registered() registers them all in the kernel
// registry; the engine picks them up at bind time by structure match.
//
//   beepc [--out-dir src/beeping/kernels] [--no-builtins] [spec.json ...]
//
// Without arguments beepc regenerates the checked-in builtin kernels
// (bfw, timeout_bfw_t9, bw). Output is deterministic - no timestamps,
// no host state - so CI can re-run beepc and `git diff --exit-code`
// the tree to prove the checked-in kernels are fresh.
//
// Structural matching means one kernel serves a protocol family: the
// stochastic rows' parameter and successors stay runtime data read
// through plane_ctx::rules, so the bfw kernel runs every BFW(p) and the
// timeout kernel every Timeout-BFW with the same T.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "beeping/plane_kernel.hpp"
#include "beeping/protocol.hpp"
#include "core/protocol_spec.hpp"
#include "support/cli.hpp"

namespace {

using beepkit::beeping::machine_table;
using beepkit::beeping::state_id;
using beepkit::beeping::transition_rule;
using beepkit::core::protocol_spec;

// Mirrors engine::analyze_plane_plan exactly: the generated kernel must
// cover the same states with chains as the interpreted gear, or the
// two would route different lanes through the per-state decode.
struct chain_plan {
  struct chain {
    state_id first = 0;
    state_id last = 0;
    state_id top_next = 0;
    std::uint8_t meta = 0;
  };
  std::vector<chain> chains;
  std::vector<bool> member;
};

chain_plan analyze_chains(const machine_table& table) {
  const std::size_t q = table.state_count();
  chain_plan plan;
  plan.member.assign(q, false);
  const auto det_next = [&table](std::size_t s, bool heard,
                                 state_id& next) noexcept {
    const transition_rule& rule = table.rule(static_cast<state_id>(s), heard);
    if (rule.draw != transition_rule::draw_kind::none) return false;
    next = rule.next;
    return true;
  };
  for (std::size_t s = 0; s < q; ++s) {
    if (plan.member[s]) continue;
    state_id top_next = 0;
    if (!det_next(s, true, top_next)) continue;
    std::size_t last = s;
    while (last + 1 < q && !plan.member[last + 1]) {
      state_id bot_next = 0;
      if (!det_next(last, false, bot_next) || bot_next != last + 1) break;
      state_id next_top = 0;
      if (!det_next(last + 1, true, next_top) || next_top != top_next) break;
      if (table.meta[last + 1] != table.meta[s]) break;
      ++last;
    }
    if (last - s + 1 < 4) continue;
    plan.chains.push_back({static_cast<state_id>(s),
                           static_cast<state_id>(last), top_next,
                           table.meta[s]});
    for (std::size_t t = s; t <= last; ++t) plan.member[t] = true;
  }
  return plan;
}

std::string sanitize_identifier(const std::string& name) {
  std::string out;
  bool last_underscore = true;  // also trims leading underscores
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) != 0) {
      out += static_cast<char>(std::tolower(uc));
      last_underscore = false;
    } else if (!last_underscore) {
      out += '_';
      last_underscore = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), 'k');
  }
  return out;
}

std::string escape_literal(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  return out;
}

struct kernel_source {
  std::string name;       // kernel + file + factory identifier
  std::string spec_name;  // human-readable spec name (comment only)
  machine_table table;
  std::string structure;
};

kernel_source make_source(std::string name, const protocol_spec& spec) {
  kernel_source src;
  src.name = std::move(name);
  src.spec_name = spec.name;
  src.table = beepkit::core::compile_spec_table(spec);
  if (src.table.state_count() > 64) {
    throw std::invalid_argument("beepc: spec '" + spec.name + "' has " +
                                std::to_string(src.table.state_count()) +
                                " states; plane kernels cap at 64");
  }
  src.structure = beepkit::beeping::serialize_table_structure(src.table);
  return src;
}

std::string generated_banner() {
  return
      "// Generated by tools/beepc - DO NOT EDIT; regenerate with:\n"
      "//   beepc --out-dir src/beeping/kernels\n";
}

std::string emit_kernel(const kernel_source& src) {
  const machine_table& table = src.table;
  const std::size_t q = table.state_count();
  std::size_t plane_count = 1;
  while ((std::size_t{1} << plane_count) < q) ++plane_count;
  const chain_plan plan = analyze_chains(table);
  // Stochastic rows get stable slot ids in (state, bot-then-top) order;
  // the kernel resolves them per node through plane_ctx::rules.
  std::vector<int> draw_index(q * 2, -1);
  std::vector<std::size_t> draw_slots;
  for (std::size_t s = 0; s < q; ++s) {
    for (const bool heard : {false, true}) {
      const std::size_t slot = (s << 1) | (heard ? 1U : 0U);
      if (table.rules[slot].draw != transition_rule::draw_kind::none) {
        draw_index[slot] = static_cast<int>(draw_slots.size());
        draw_slots.push_back(slot);
      }
    }
  }
  const auto rule_literal = [&](std::size_t s, bool heard) {
    const std::size_t slot = (s << 1) | (heard ? 1U : 0U);
    std::ostringstream out;
    if (draw_index[slot] >= 0) {
      out << "{true, 0, " << draw_index[slot] << "}";
    } else {
      out << "{false, " << table.rules[slot].next << ", 0}";
    }
    return out.str();
  };

  std::ostringstream out;
  out << generated_banner();
  out << "// Kernel '" << src.name << "' from spec: " << src.spec_name
      << "\n";
  out << "// Structure: " << src.structure << "\n";
  out << "#include \"beeping/compiled_sweep.hpp\"\n\n";
  out << "namespace beepkit::beeping::kernels {\n";
  out << "namespace {\n\n";
  out << "// " << q << " states in " << plane_count << " plane"
      << (plane_count == 1 ? "" : "s") << ", " << draw_slots.size()
      << " stochastic row" << (draw_slots.size() == 1 ? "" : "s") << ", "
      << plan.chains.size() << " patience chain"
      << (plan.chains.size() == 1 ? "" : "s") << ".\n";
  out << "struct " << src.name << "_traits {\n";
  out << "  static constexpr std::size_t state_count = " << q << ";\n";
  out << "  static constexpr std::size_t plane_count = " << plane_count
      << ";\n";
  out << "  static constexpr std::size_t chain_count = " << plan.chains.size()
      << ";\n";
  out << "  static constexpr std::size_t draw_count = " << draw_slots.size()
      << ";\n";
  out << "  static constexpr std::uint8_t meta[state_count] = {";
  for (std::size_t s = 0; s < q; ++s) {
    out << (s == 0 ? "" : ", ") << static_cast<unsigned>(table.meta[s]);
  }
  out << "};\n";
  out << "  static constexpr kernel_rule top[state_count] = {\n";
  for (std::size_t s = 0; s < q; ++s) {
    out << "      " << rule_literal(s, true) << (s + 1 < q ? "," : "")
        << "\n";
  }
  out << "  };\n";
  out << "  static constexpr kernel_rule bot[state_count] = {\n";
  for (std::size_t s = 0; s < q; ++s) {
    out << "      " << rule_literal(s, false) << (s + 1 < q ? "," : "")
        << "\n";
  }
  out << "  };\n";
  out << "  static constexpr bool chain_member[state_count] = {";
  for (std::size_t s = 0; s < q; ++s) {
    out << (s == 0 ? "" : ", ") << (plan.member[s] ? "true" : "false");
  }
  out << "};\n";
  out << "  static constexpr kernel_chain chains[" << std::max<std::size_t>(
      1, plan.chains.size()) << "] = {";
  if (plan.chains.empty()) {
    out << "{}";
  } else {
    for (std::size_t c = 0; c < plan.chains.size(); ++c) {
      const chain_plan::chain& chain = plan.chains[c];
      out << (c == 0 ? "" : ", ") << "{" << chain.first << ", " << chain.last
          << ", " << chain.top_next << ", "
          << static_cast<unsigned>(chain.meta) << "}";
    }
  }
  out << "};\n";
  out << "  static constexpr std::uint16_t draw_slots[" <<
      std::max<std::size_t>(1, draw_slots.size()) << "] = {";
  if (draw_slots.empty()) {
    out << "0";
  } else {
    for (std::size_t d = 0; d < draw_slots.size(); ++d) {
      out << (d == 0 ? "" : ", ") << draw_slots[d];
    }
  }
  out << "};\n";
  out << "};\n\n";
  out << "}  // namespace\n\n";
  out << "const compiled_kernel& kernel_" << src.name << "() {\n";
  out << "  static const compiled_kernel kernel = [] {\n";
  out << "    compiled_kernel k;\n";
  out << "    k.name = \"" << escape_literal(src.name) << "\";\n";
  out << "    k.structure = \"" << escape_literal(src.structure) << "\";\n";
  out << "    k.state_count = " << q << ";\n";
  out << "    k.plane_count = " << plane_count << ";\n";
  for (std::size_t i = 0; i < beepkit::beeping::kernel_width_slots; ++i) {
    const std::size_t width = beepkit::beeping::kernel_widths[i];
    out << "    k.sweep[" << i << "] = &compiled_sweep<" << src.name
        << "_traits, " << width << ">;\n";
  }
  for (std::size_t i = 0; i < beepkit::beeping::kernel_width_slots; ++i) {
    const std::size_t width = beepkit::beeping::kernel_widths[i];
    out << "    k.display[" << i << "] = &compiled_display_sweep<" << src.name
        << "_traits, " << width << ">;\n";
  }
  out << "    return k;\n";
  out << "  }();\n";
  out << "  return kernel;\n";
  out << "}\n\n";
  out << "}  // namespace beepkit::beeping::kernels\n";
  return out.str();
}

std::string emit_manifest(const std::vector<kernel_source>& sources) {
  std::ostringstream out;
  out << generated_banner();
  out << "#include \"beeping/plane_kernel.hpp\"\n\n";
  out << "namespace beepkit::beeping {\n\n";
  out << "namespace kernels {\n";
  for (const kernel_source& src : sources) {
    out << "const compiled_kernel& kernel_" << src.name << "();\n";
  }
  out << "}  // namespace kernels\n\n";
  out << "void ensure_builtin_kernels_registered() {\n";
  out << "  static const bool registered = [] {\n";
  for (const kernel_source& src : sources) {
    out << "    register_compiled_kernel(kernels::kernel_" << src.name
        << "());\n";
  }
  out << "    return true;\n";
  out << "  }();\n";
  out << "  (void)registered;\n";
  out << "}\n\n";
  out << "}  // namespace beepkit::beeping\n";
  return out.str();
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("beepc: cannot open " + path.string() +
                             " for writing");
  }
  out << text;
  if (!out) {
    throw std::runtime_error("beepc: write to " + path.string() + " failed");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace beepkit;
  const support::cli args(argc, argv, {"no-builtins"});
  const std::filesystem::path out_dir =
      args.get_string("out-dir", "src/beeping/kernels");

  std::vector<kernel_source> sources;
  try {
    if (!args.get_bool("no-builtins", false)) {
      sources.push_back(make_source("bfw", core::bfw_spec(0.5)));
      sources.push_back(
          make_source("timeout_bfw_t9", core::timeout_bfw_spec(0.5, 9)));
      sources.push_back(make_source("bw", core::bw_spec(0.5)));
    }
    for (const std::string& spec_path : args.positionals()) {
      std::ifstream in(spec_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "beepc: cannot read spec %s\n",
                     spec_path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      const protocol_spec spec =
          protocol_spec::from_json_text(text.view());
      sources.push_back(make_source(sanitize_identifier(spec.name), spec));
    }
    if (sources.empty()) {
      std::fprintf(stderr,
                   "usage: beepc [--out-dir DIR] [--no-builtins] "
                   "[spec.json ...]\n");
      return 2;
    }
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (std::size_t j = i + 1; j < sources.size(); ++j) {
        if (sources[i].name == sources[j].name) {
          throw std::invalid_argument("beepc: duplicate kernel name '" +
                                      sources[i].name + "'");
        }
        if (sources[i].structure == sources[j].structure) {
          throw std::invalid_argument(
              "beepc: kernels '" + sources[i].name + "' and '" +
              sources[j].name +
              "' have identical structure; one kernel already serves both");
        }
      }
    }
    std::filesystem::create_directories(out_dir);
    for (const kernel_source& src : sources) {
      const std::filesystem::path path = out_dir / (src.name + ".gen.cpp");
      write_file(path, emit_kernel(src));
      std::printf("beepc: %s  (%s)\n", path.string().c_str(),
                  src.structure.c_str());
    }
    const std::filesystem::path manifest = out_dir / "manifest.gen.cpp";
    write_file(manifest, emit_manifest(sources));
    std::printf("beepc: %s  (%zu kernels)\n", manifest.string().c_str(),
                sources.size());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }
  return 0;
}
