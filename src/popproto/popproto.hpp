// Population-protocols substrate (paper Section 1.4, related work).
//
// In the classical model [3], at each step a scheduler picks an edge
// of the communication graph uniformly at random; its endpoints - an
// ordered (initiator, responder) pair - interact and update their
// states by a fixed pairwise transition function. Leader election
// here is *eventual*, exactly as in the paper's Definition 1, and the
// natural cost measure is the number of interactions (divide by n for
// "parallel time").
//
// The paper cites the key facts we reproduce in bench/population_comparison:
// constant-state protocols on the clique need Omega(n^2) expected
// interactions [10] - matched by the classic two-state fight protocol
// below - while the beeping model's broadcast primitive lets BFW elect
// in polylog parallel time on the same clique. The substrate supports
// arbitrary connected graphs, where pairwise interaction shows its
// weakness: the fight protocol simply cannot finish (far-apart leaders
// never meet), and token-coalescence (random-walk) protocols are
// needed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepkit::popproto {

using state_id = std::uint16_t;

/// A population protocol: anonymous pairwise transition function.
class protocol {
 public:
  virtual ~protocol() = default;

  [[nodiscard]] virtual std::size_t state_count() const = 0;
  [[nodiscard]] virtual state_id initial_state() const = 0;
  [[nodiscard]] virtual bool is_leader(state_id state) const = 0;
  /// delta(initiator, responder) -> (initiator', responder'). May use
  /// randomness (our protocols use at most one coin per interaction).
  [[nodiscard]] virtual std::pair<state_id, state_id> interact(
      state_id initiator, state_id responder, support::rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Random-scheduler engine over an arbitrary connected graph: each
/// step picks one edge uniformly and one of its two orientations
/// uniformly.
class scheduler {
 public:
  scheduler(const graph::graph& g, const protocol& proto,
            std::uint64_t seed);

  /// One interaction.
  void step();
  void run_interactions(std::uint64_t count);

  struct run_result {
    std::uint64_t interactions = 0;
    bool converged = false;   ///< exactly one leader at stop
    std::size_t leaders = 0;  ///< leader count at stop
  };
  /// Runs until a single leader remains or the budget is exhausted.
  /// Both bundled protocols are leader-monotone, so single-leader is
  /// permanent; zero leaders (unreachable for the bundled protocols
  /// from the all-leader start) would be reported as non-convergence.
  run_result run_until_single_leader(std::uint64_t max_interactions);

  [[nodiscard]] std::uint64_t interactions() const noexcept {
    return interactions_;
  }
  [[nodiscard]] std::size_t leader_count() const noexcept {
    return leader_count_;
  }
  [[nodiscard]] state_id state_of(graph::node_id u) const {
    return states_[u];
  }
  [[nodiscard]] graph::node_id sole_leader() const;

 private:
  const graph::graph* g_;
  const protocol* proto_;
  support::rng rng_;
  std::vector<graph::edge> edges_;
  std::vector<state_id> states_;
  std::uint64_t interactions_ = 0;
  std::size_t leader_count_ = 0;
};

/// The classic two-state fight protocol: everyone starts as a leader;
/// when two leaders meet, the responder yields. On the clique this
/// takes Theta(n^2) expected interactions (the last two leaders need
/// Theta(n^2) draws to meet) - the constant-state lower-bound regime
/// of [10]. On non-complete graphs it DEADLOCKS whenever two surviving
/// leaders are non-adjacent.
class fight_protocol final : public protocol {
 public:
  static constexpr state_id leader = 0;
  static constexpr state_id follower = 1;

  [[nodiscard]] std::size_t state_count() const override { return 2; }
  [[nodiscard]] state_id initial_state() const override { return leader; }
  [[nodiscard]] bool is_leader(state_id state) const override {
    return state == leader;
  }
  [[nodiscard]] std::pair<state_id, state_id> interact(
      state_id initiator, state_id responder,
      support::rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "PP-fight"; }
};

/// Token coalescence: leadership is a token performing a random walk
/// (a leader meeting a follower hands the token over with probability
/// 1/2); two meeting tokens merge. Coalescing random walks elect on
/// ANY connected graph, in O(n * hitting time) interactions - the
/// mechanism behind graphical population-protocol election [2].
class token_coalescence_protocol final : public protocol {
 public:
  static constexpr state_id leader = 0;
  static constexpr state_id follower = 1;

  [[nodiscard]] std::size_t state_count() const override { return 2; }
  [[nodiscard]] state_id initial_state() const override { return leader; }
  [[nodiscard]] bool is_leader(state_id state) const override {
    return state == leader;
  }
  [[nodiscard]] std::pair<state_id, state_id> interact(
      state_id initiator, state_id responder,
      support::rng& rng) const override;
  [[nodiscard]] std::string name() const override {
    return "PP-token-coalescence";
  }
};

}  // namespace beepkit::popproto
