// EX3 (extension) - the Section 1.4 cross-model comparison, measured.
// The paper surveys leader election in population protocols: on the
// clique, constant-state protocols need Omega(n^2) expected
// interactions [10] (matched by the two-state fight protocol), and on
// general graphs pairwise protocols need token movement [2]. The
// beeping model's one-to-many broadcast is what buys BFW its polylog
// parallel time on low-diameter graphs - "significant differences
// that make it difficult to compare convergence times across the two
// settings", quantified here side by side.
//
//   ./build/bench/population_comparison [--trials 20] [--seed 13]
//                                       [--threads 0]
#include <cstdio>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/convergence.hpp"
#include "graph/generators.hpp"
#include "popproto/popproto.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace beepkit;

struct pp_stats {
  std::size_t converged = 0;
  std::vector<double> interactions;
};

pp_stats run_pp(const graph::graph& g, const popproto::protocol& proto,
                std::size_t trials, std::uint64_t seed, std::uint64_t budget,
                std::size_t threads, analysis::throughput_meter& meter) {
  struct pp_trial {
    bool converged = false;
    std::uint64_t interactions = 0;
  };
  const auto runs = analysis::map_trials(
      trials, seed, threads,
      [&](std::size_t /*trial*/, std::uint64_t trial_seed) {
        popproto::scheduler sched(g, proto, trial_seed);
        const auto result = sched.run_until_single_leader(budget);
        return pp_trial{result.converged, result.interactions};
      });
  pp_stats stats;
  for (const pp_trial& run : runs) {
    // Interactions are the population model's round analogue.
    meter.add_run(run.interactions);
    if (run.converged) {
      ++stats.converged;
      stats.interactions.push_back(static_cast<double>(run.interactions));
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const support::cli args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 13));
  const std::size_t threads = args.get_threads();
  analysis::throughput_meter meter;

  std::printf("=== EX3: population protocols vs the beeping model "
              "(Section 1.4) ===\n\n");

  // --- Clique scaling: fight ~ n^2 interactions, BFW ~ log n rounds.
  support::table clique({"n", "PP-fight median inter.", "inter./n^2",
                         "PP parallel time", "BFW median rounds"});
  clique.set_title("Clique: Theta(n^2) pairwise vs polylog broadcast");
  std::vector<double> ns, medians;
  const popproto::fight_protocol fight;
  for (const std::size_t n : {16UL, 32UL, 64UL, 128UL, 256UL}) {
    const auto g = graph::make_complete(n);
    const auto pp =
        run_pp(g, fight, trials, seed, 1000000000ULL, threads, meter);
    const double median = support::quantile(pp.interactions, 0.5);
    ns.push_back(static_cast<double>(n));
    medians.push_back(median);

    const core::bfw_machine bfw(0.5);
    const auto rounds =
        core::convergence_rounds(g, bfw, trials, seed + 1, 100000);
    clique.add_row(
        {support::table::num(static_cast<long long>(n)),
         support::table::num(median, 0),
         support::table::num(median / (static_cast<double>(n) * n), 2),
         support::table::num(median / static_cast<double>(n), 1),
         support::table::num(support::quantile(rounds, 0.5), 0)});
  }
  const auto fit = support::fit_loglog(ns, medians);
  std::printf("%s", clique.to_string().c_str());
  std::printf("log-log slope of fight interactions vs n: %.2f (the "
              "Omega(n^2) constant-state regime of [10])\n\n",
              fit.slope);

  // --- Topology: pairwise needs token movement off the clique.
  support::table topo({"graph", "protocol", "conv", "median interactions"});
  topo.set_title("General graphs: fight deadlocks; token coalescence "
                 "walks (cf. [2])");
  const popproto::token_coalescence_protocol token;
  support::rng graph_rng(seed);
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::make_path(24));
  graphs.push_back(graph::make_cycle(24));
  graphs.push_back(graph::make_erdos_renyi_connected(24, 0.2, graph_rng));
  for (const auto& g : graphs) {
    const auto f = run_pp(g, fight, trials, seed + 2, 3000000, threads, meter);
    topo.add_row({g.name(), fight.name(),
                  std::to_string(f.converged) + "/" + std::to_string(trials),
                  f.converged
                      ? support::table::num(
                            support::quantile(f.interactions, 0.5), 0)
                      : "-"});
    const auto t =
        run_pp(g, token, trials, seed + 2, 100000000, threads, meter);
    topo.add_row({g.name(), token.name(),
                  std::to_string(t.converged) + "/" + std::to_string(trials),
                  t.converged
                      ? support::table::num(
                            support::quantile(t.interactions, 0.5), 0)
                      : "-"});
  }
  std::printf("%s\n", topo.to_string().c_str());
  std::printf("the beeping model's broadcast reaches every neighbor at\n"
              "once; the population model must route leadership through\n"
              "pairwise meetings - the structural gap behind the paper's\n"
              "\"difficult to compare\" remark.\n");
  std::printf("\n%s (rounds = interactions here)\n",
              meter.summary(threads).c_str());
  return 0;
}
