// beeptel telemetry:
//
//  * the bit-exactness contract — engines with probes fully hot
//    (runtime-enabled, every round sampled, tracing on) must be
//    draw-for-draw identical to probes-off engines across every
//    (gear x kernel x tile x thread) point of the tiled acceptance
//    grid: per-round states, leader counts, coin totals, next raw
//    generator draws;
//  * counter invariants — gear counters partition the round count,
//    plane counters agree with the engine's own plane/compiled round
//    introspection, tile claims cover the word range exactly;
//  * restart_from_protocol resets the per-run introspection counters
//    (the stale gather_kernel_used()/plane_rounds() fix);
//  * registry/histogram/exposition sanity: percentiles, snapshot
//    shape, Prometheus text, Chrome trace JSON.
//
// Tests that touch the global knobs (enable, stride, tracing) or the
// global registry save/restore/reset them, so suite order never
// matters.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "beeping/engine.hpp"
#include "core/bfw.hpp"
#include "core/bfw_stoneage.hpp"
#include "core/convergence.hpp"
#include "core/timeout_bfw.hpp"
#include "graph/gather.hpp"
#include "graph/generators.hpp"
#include "stoneage/stoneage.hpp"
#include "support/build_info.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace beepkit {
namespace {

namespace tel = support::telemetry;

using beeping::engine;
using beeping::fsm_protocol;
using beeping::noise_model;

/// Saves and restores the global telemetry knobs, and starts each test
/// from a clean registry/trace buffer.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = tel::enabled();
    saved_stride_ = tel::round_sample_stride();
    saved_trace_ = tel::trace_enabled();
    tel::registry::global().reset();
    tel::reset_trace();
  }
  void TearDown() override {
    tel::set_enabled(saved_enabled_);
    tel::set_round_sample_stride(saved_stride_);
    tel::set_trace_enabled(saved_trace_);
    tel::registry::global().reset();
    tel::reset_trace();
  }

 private:
  bool saved_enabled_ = true;
  std::uint64_t saved_stride_ = 64;
  bool saved_trace_ = false;
};

struct tile_config {
  std::size_t threads;
  std::size_t tile_words;
};

/// The tiled acceptance grid from tests/test_tiled.cpp.
std::vector<tile_config> tile_configs() {
  std::vector<tile_config> configs;
  for (const std::size_t threads : {1U, 2U, 8U}) {
    for (const std::size_t tile : {1U, 64U, 0U}) {
      configs.push_back({threads, tile});
    }
  }
  return configs;
}

struct graph_case {
  std::string label;
  graph::graph g;
};

/// Configures one engine of a differential pair (gear forcing, kernel
/// forcing); applied identically to the probes-on and probes-off side.
using engine_setup = void (*)(engine&);

void setup_default(engine&) {}
void setup_interpreted(engine& e) { e.set_compiled_kernel_enabled(false); }
void setup_virtual(engine& e) { e.set_fast_path_enabled(false); }
void setup_word_csr(engine& e) {
  e.set_gather_kernel(graph::gather_kernel::word_csr_push);
}
void setup_packed_pull(engine& e) {
  e.set_gather_kernel(graph::gather_kernel::packed_pull);
}

/// Probes fully hot vs probes off, same seed, same configuration: the
/// full observable trace must match draw for draw.
void expect_probes_invisible(const graph::graph& g,
                             const beeping::state_machine& machine,
                             const tile_config& cfg, engine_setup setup,
                             int rounds, const noise_model& noise,
                             const std::string& label) {
  tel::set_enabled(true);
  tel::set_round_sample_stride(1);  // every expensive probe, every round
  tel::set_trace_enabled(true);
  fsm_protocol on_proto(machine);
  fsm_protocol off_proto(machine);
  engine on(g, on_proto, 7, noise);
  engine off(g, off_proto, 7, noise);
  off.set_telemetry_enabled(false);
  setup(on);
  setup(off);
  if (cfg.threads != 1 || cfg.tile_words != 0) {
    on.set_parallelism(cfg.threads, cfg.tile_words);
    off.set_parallelism(cfg.threads, cfg.tile_words);
  }
  for (int round = 0; round < rounds; ++round) {
    on.step();
    off.step();
    ASSERT_EQ(on_proto.states(), off_proto.states())
        << label << " diverged at round " << round;
    ASSERT_EQ(on.leader_count(), off.leader_count()) << label;
  }
  EXPECT_EQ(on.total_coins_consumed(), off.total_coins_consumed()) << label;
  EXPECT_EQ(on.plane_rounds(), off.plane_rounds()) << label;
  EXPECT_EQ(on.compiled_rounds(), off.compiled_rounds()) << label;
  EXPECT_EQ(on.gather_kernel_used(), off.gather_kernel_used()) << label;
  for (graph::node_id u = 0; u < g.node_count(); ++u) {
    ASSERT_EQ(on.node_rng(u).next_u64(), off.node_rng(u).next_u64())
        << label << " generator diverged at node " << u;
  }
}

TEST_F(TelemetryTest, ProbesInvisibleAcrossGearsAndTilings) {
  const core::bfw_machine machine(0.5);
  const std::vector<std::pair<std::string, engine_setup>> gears = {
      {"compiled", &setup_default},
      {"interpreted", &setup_interpreted},
      {"virtual", &setup_virtual},
  };
  for (const auto& shape :
       {graph_case{"path65", graph::make_path(65)},
        graph_case{"grid8x16", graph::make_grid(8, 16)}}) {
    for (const auto& [gear, setup] : gears) {
      for (const tile_config& cfg : tile_configs()) {
        expect_probes_invisible(
            shape.g, machine, cfg, setup, 40, noise_model{},
            shape.label + " gear=" + gear +
                " threads=" + std::to_string(cfg.threads) +
                " tile=" + std::to_string(cfg.tile_words));
      }
    }
  }
}

TEST_F(TelemetryTest, ProbesInvisibleWithForcedKernelsAndNoise) {
  const core::bfw_machine machine(0.5);
  for (const auto& [kernel, setup] :
       std::vector<std::pair<std::string, engine_setup>>{
           {"word_csr_push", &setup_word_csr},
           {"packed_pull", &setup_packed_pull}}) {
    for (const tile_config& cfg : tile_configs()) {
      expect_probes_invisible(
          graph::make_complete(128), machine, cfg, setup, 25, noise_model{},
          "complete128 kernel=" + kernel +
              " threads=" + std::to_string(cfg.threads) +
              " tile=" + std::to_string(cfg.tile_words));
    }
  }
  // Reception noise draws extra randomness per round — the probes must
  // not perturb those streams either.
  expect_probes_invisible(graph::make_grid(8, 16), machine, {8, 1},
                          &setup_default, 30, noise_model{0.1, 0.05},
                          "noisy grid8x16");
}

TEST_F(TelemetryTest, ProbesInvisibleWithHysteresisTransitions) {
  // Timeout-BFW T = 9 exercises plane entry AND the sparse fallback
  // after the wave dies down — both hysteresis transitions happen with
  // probes hot.
  const core::timeout_bfw_machine machine(0.5, 9);
  for (const tile_config& cfg : {tile_config{1, 0}, tile_config{8, 1}}) {
    expect_probes_invisible(graph::make_path(65), machine, cfg,
                            &setup_default, 60, noise_model{},
                            "timeout path65 threads=" +
                                std::to_string(cfg.threads));
  }
}

TEST_F(TelemetryTest, StoneAgeProbesInvisible) {
  const core::bfw_stone_automaton automaton(0.5);
  tel::set_enabled(true);
  tel::set_round_sample_stride(1);
  tel::set_trace_enabled(true);
  const auto g = graph::make_grid(8, 8);
  for (const tile_config& cfg : tile_configs()) {
    stoneage::engine on(g, automaton, 1, 5);
    stoneage::engine off(g, automaton, 1, 5);
    off.set_telemetry_enabled(false);
    on.set_parallelism(cfg.threads, cfg.tile_words);
    off.set_parallelism(cfg.threads, cfg.tile_words);
    for (int round = 0; round < 40; ++round) {
      on.step();
      off.step();
      ASSERT_EQ(on.states(), off.states())
          << "threads=" << cfg.threads << " tile=" << cfg.tile_words
          << " round " << round;
      ASSERT_EQ(on.leader_count(), off.leader_count());
    }
  }
}

// The 4-thread concurrent-scratch smoke CI runs under TSan: per-slot
// claim counters written inside worker slots, engine metrics folded
// (claim_counts() read) between rounds, with tracing on.
TEST_F(TelemetryTest, FourThreadConcurrentFoldSmoke) {
  tel::set_enabled(true);
  tel::set_round_sample_stride(1);
  tel::set_trace_enabled(true);
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(8, 16);
  fsm_protocol proto(machine);
  engine sim(g, proto, 7);
  sim.set_parallelism(4, 1);
  for (int round = 0; round < 30; ++round) {
    sim.step();
    // Mid-run fold: reads the per-slot scratch after the round barrier.
    const tel::engine_metrics m = sim.telemetry_metrics();
    ASSERT_EQ(m.rounds_total(),
              tel::compiled_in ? sim.round() : 0U);
  }
  EXPECT_EQ(sim.round(), 30U);
}

TEST_F(TelemetryTest, GearCountersPartitionTheRoundCount) {
  if (!tel::compiled_in) GTEST_SKIP() << "built with BEEPKIT_TELEMETRY=OFF";
  tel::set_enabled(true);
  tel::set_round_sample_stride(4);
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(8, 16);
  fsm_protocol proto(machine);
  engine sim(g, proto, 7);
  sim.set_parallelism(4, 1);
  sim.run_rounds(50);
  const tel::engine_metrics m = sim.telemetry_metrics();
  EXPECT_EQ(m.rounds_total(), 50U);
  EXPECT_EQ(m.rounds_plane_interpreted + m.rounds_plane_compiled,
            sim.plane_rounds());
  EXPECT_EQ(m.rounds_plane_compiled, sim.compiled_rounds());
  EXPECT_GE(m.plane_entries, 1U);
  EXPECT_LE(m.quiet_words, m.scanned_words);
  EXPECT_EQ(m.round_ns.count(), m.sampled_rounds);
  EXPECT_LE(m.sampled_rounds, 50U);
  // 4 workers over 2 words of grid8x16: claims were counted and cover
  // at least one full sweep of the word range per round.
  EXPECT_GT(m.tile_claims, 0U);
  EXPECT_GT(m.tile_claimed_words, 0U);
  EXPECT_GE(m.tile_imbalance, 1.0);
}

TEST_F(TelemetryTest, TileExecutorClaimsCoverTheWordRangeExactly) {
  if (!tel::compiled_in) GTEST_SKIP() << "built with BEEPKIT_TELEMETRY=OFF";
  support::tile_executor exec(4);
  for (const std::size_t words : {1U, 63U, 64U, 137U}) {
    exec.reset_claim_counts();
    for (int call = 0; call < 3; ++call) {
      exec.run_tiles(words, 5, [](std::size_t, std::size_t, std::size_t) {});
    }
    std::uint64_t claimed_words = 0;
    std::uint64_t claimed_tiles = 0;
    for (const support::tile_executor::slot_claims& c : exec.claim_counts()) {
      claimed_words += c.words;
      claimed_tiles += c.tiles;
    }
    EXPECT_EQ(claimed_words, 3 * words) << "words=" << words;
    EXPECT_GE(claimed_tiles, 3U) << "words=" << words;
  }
}

TEST_F(TelemetryTest, RestartFromProtocolResetsRunIntrospection) {
  // The pinned fix: plane_rounds()/compiled_rounds()/gather_kernel_used()
  // and the telemetry scratch describe one run; restart_from_protocol
  // starts a new one.
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_path(128);
  fsm_protocol proto(machine);
  engine sim(g, proto, 21);
  sim.run_rounds(50);
  ASSERT_GT(sim.plane_rounds(), 0U);
  ASSERT_NE(sim.gather_kernel_used(), graph::gather_kernel::auto_select);
  std::vector<beeping::state_id> injected(g.node_count(),
                                          machine.initial_state());
  proto.set_states(injected);
  sim.restart_from_protocol();
  EXPECT_EQ(sim.round(), 0U);
  EXPECT_EQ(sim.plane_rounds(), 0U);
  EXPECT_EQ(sim.compiled_rounds(), 0U);
  EXPECT_EQ(sim.gather_kernel_used(), graph::gather_kernel::auto_select);
  EXPECT_EQ(sim.telemetry_metrics().rounds_total(), 0U);
}

TEST_F(TelemetryTest, ElectionOptionsToggleAndRegistryFold) {
  if (!tel::compiled_in) GTEST_SKIP() << "built with BEEPKIT_TELEMETRY=OFF";
  tel::set_enabled(true);
  const core::bfw_machine machine(0.5);
  const auto g = graph::make_grid(6, 6);
  const auto with = core::run_election(g, machine, 42, {});
  EXPECT_EQ(tel::registry::global().counter("engine_trials_total"), 1U);
  EXPECT_EQ(tel::registry::global().histogram("engine_trial_rounds").count(),
            1U);
  // telemetry = false: identical outcome, no registry fold.
  tel::registry::global().reset();
  const auto without =
      core::run_election(g, machine, 42, {.telemetry = false});
  EXPECT_EQ(with.rounds, without.rounds);
  EXPECT_EQ(with.leader, without.leader);
  EXPECT_EQ(with.total_coins, without.total_coins);
  EXPECT_EQ(tel::registry::global().counter("engine_trials_total"), 0U);
}

// ---- histogram / registry / exposition ------------------------------

TEST_F(TelemetryTest, HistogramStatisticsAndPercentiles) {
  tel::log2_histogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  for (int i = 0; i < 10; ++i) h.record(42);
  EXPECT_EQ(h.count(), 10U);
  EXPECT_EQ(h.sum(), 420U);
  EXPECT_EQ(h.min(), 42U);
  EXPECT_EQ(h.max(), 42U);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  // A single-valued distribution pins every percentile exactly (the
  // min/max clamp of the in-bucket interpolation).
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);

  tel::log2_histogram wide;
  for (std::uint64_t v = 1; v <= 1000; ++v) wide.record(v);
  EXPECT_EQ(wide.count(), 1000U);
  EXPECT_EQ(wide.min(), 1U);
  EXPECT_EQ(wide.max(), 1000U);
  const double p50 = wide.percentile(0.50);
  const double p90 = wide.percentile(0.90);
  const double p99 = wide.percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 1000.0);
  // p50 of uniform 1..1000 must land in the 2x-wide bucket around 500.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);

  tel::log2_histogram merged;
  merged.merge(h);
  merged.merge(wide);
  EXPECT_EQ(merged.count(), 1010U);
  EXPECT_EQ(merged.min(), 1U);
  EXPECT_EQ(merged.max(), 1000U);
  merged.reset();
  EXPECT_EQ(merged.count(), 0U);
  EXPECT_EQ(merged.min(), 0U);
}

TEST_F(TelemetryTest, RegistrySnapshotAndPrometheus) {
  tel::registry& reg = tel::registry::global();
  reg.add("test_rounds_total", 5);
  reg.add("test_rounds_total", 2);
  reg.set_gauge("test_imbalance", 1.25);
  reg.set_info("test_kernel", "bfw_w4");
  reg.record("test_latency_ns", 100);
  reg.record("test_latency_ns", 200);
  EXPECT_EQ(reg.counter("test_rounds_total"), 7U);
  EXPECT_DOUBLE_EQ(reg.gauge("test_imbalance"), 1.25);
  EXPECT_EQ(reg.info("test_kernel"), "bfw_w4");
  EXPECT_EQ(reg.histogram("test_latency_ns").count(), 2U);
  EXPECT_EQ(reg.counter("never_touched"), 0U);

  const support::json snap = tel::snapshot();
  ASSERT_TRUE(snap.is_object());
  ASSERT_NE(snap.find("build"), nullptr);
  const support::json* counters = snap.find("counters");
  ASSERT_NE(counters, nullptr);
  const support::json* c = counters->find("test_rounds_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_u64(), 7U);
  const support::json* hists = snap.find("histograms");
  ASSERT_NE(hists, nullptr);
  const support::json* lat = hists->find("test_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->as_u64(), 2U);
  // The snapshot is parseable back from its own dump (what --telemetry
  // writes and telem_report reads).
  EXPECT_TRUE(support::json::parse(snap.dump()).has_value());

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE test_rounds_total counter"), std::string::npos);
  EXPECT_NE(prom.find("test_rounds_total 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_imbalance gauge"), std::string::npos);
  EXPECT_NE(prom.find("test_kernel_info{value=\"bfw_w4\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_count 2"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.counter("test_rounds_total"), 0U);
}

TEST_F(TelemetryTest, ChromeTraceWritesPerfettoLoadableJson) {
  if (!tel::compiled_in) GTEST_SKIP() << "built with BEEPKIT_TELEMETRY=OFF";
  tel::set_trace_enabled(true);
  { tel::scoped_span span("unit-test-span", "test"); }
  tel::trace_complete("explicit-span", "test", 100, 50);
  tel::set_trace_enabled(false);
  ASSERT_GE(tel::trace_event_count(), 2U);
  EXPECT_EQ(tel::trace_dropped(), 0U);

  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(tel::write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto doc = support::json::parse(buffer.str());
  ASSERT_TRUE(doc.has_value());
  const support::json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GE(events->as_array().size(), 2U);
  const support::json& first = events->as_array().front();
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_NE(first.find("ts"), nullptr);
  EXPECT_NE(first.find("dur"), nullptr);
  EXPECT_NE(first.find("tid"), nullptr);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SamplingStrideAndKnobs) {
  tel::set_round_sample_stride(0);
  EXPECT_FALSE(tel::round_sampled(0));
  EXPECT_FALSE(tel::round_sampled(64));
  tel::set_round_sample_stride(1);
  EXPECT_TRUE(tel::round_sampled(0));
  EXPECT_TRUE(tel::round_sampled(17));
  tel::set_round_sample_stride(64);
  EXPECT_TRUE(tel::round_sampled(0));
  EXPECT_FALSE(tel::round_sampled(63));
  EXPECT_TRUE(tel::round_sampled(128));
  if (tel::compiled_in) {
    tel::set_enabled(false);
    EXPECT_FALSE(tel::enabled());
    tel::set_enabled(true);
    EXPECT_TRUE(tel::enabled());
  } else {
    EXPECT_FALSE(tel::enabled());
  }
}

TEST_F(TelemetryTest, BuildInfoIsStamped) {
  const support::build_info& info = support::build_info::current();
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.isa.empty());
  EXPECT_EQ(info.telemetry, tel::compiled_in);
  EXPECT_EQ(info.hw_threads, std::thread::hardware_concurrency());
  const std::string line = info.one_line();
  EXPECT_NE(line.find(info.git_sha), std::string::npos);
  EXPECT_NE(line.find(info.compiler), std::string::npos);
  EXPECT_NE(line.find(" hw=" + std::to_string(info.hw_threads)),
            std::string::npos);
  const support::json j = info.to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j.find("git_sha")->as_string(), info.git_sha);
  ASSERT_NE(j.find("hw_threads"), nullptr);
  EXPECT_EQ(j.find("hw_threads")->as_u64(), info.hw_threads);
}

}  // namespace
}  // namespace beepkit
