// sweep_merge - merges N shard JSONL files of one sweep back into the
// exact per-cell statistics a single-process run_matrix would have
// produced (bit-for-bit: the trial records carry the integer outcome
// of every unit, and the merge replays the shared aggregation fold in
// trial order). Typical cross-machine flow:
//
//   machine k:  ./bench/table1_comparison --shard k/3 --jsonl shard_k.jsonl
//   anywhere:   ./tools/sweep_merge shard_0.jsonl shard_1.jsonl \
//                   shard_2.jsonl --json table1.json --csv table1.csv
//
// Exits non-zero (with a message) when shards are missing, belong to
// different sweeps, or contain conflicting duplicate records.
//
// Memory: the merge streams each file twice (coverage bitmap, then a
// per-cell k-way fold) and never materializes the trial records, so
// 1e8+-unit sweeps merge in megabytes - see sweep::merge_shards.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/table.hpp"
#include "sweep/jsonl.hpp"

int main(int argc, char** argv) {
  using namespace beepkit;
  const support::cli args(argc, argv, {"quiet"});
  const std::vector<std::string>& inputs = args.positionals();
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: sweep_merge shard0.jsonl [shard1.jsonl ...] "
                 "[--json out.json] [--csv out.csv] [--quiet]\n");
    return 2;
  }

  sweep::merge_result merged;
  try {
    merged = sweep::merge_shards(inputs);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sweep_merge: %s\n", error.what());
    return 1;
  }

  support::table results({"graph", "n", "D", "algorithm", "conv", "median",
                          "mean", "p95", "coins/node/rd"});
  results.set_title("merged sweep '" + merged.sweep_name + "' (" +
                    std::to_string(merged.units) + " units from " +
                    std::to_string(inputs.size()) + " shard file" +
                    (inputs.size() == 1 ? "" : "s") + ")");
  for (const sweep::merged_cell& cell : merged.cells) {
    const analysis::trial_stats& stats = cell.stats;
    results.add_row(
        {stats.graph_name,
         support::table::num(static_cast<long long>(stats.node_count)),
         support::table::num(static_cast<long long>(stats.diameter)),
         stats.algorithm_name,
         std::to_string(stats.converged) + "/" +
             std::to_string(stats.trials),
         support::table::num(stats.rounds.median, 0),
         support::table::num(stats.rounds.mean, 1),
         support::table::num(stats.rounds.q95, 0),
         support::table::num(stats.mean_coins_per_node_round, 3)});
  }
  if (!args.get_bool("quiet", false)) {
    std::printf("%s", results.to_string().c_str());
    if (merged.duplicate_records != 0) {
      std::printf("(%llu identical duplicate records tolerated - "
                  "overlapping resume output)\n",
                  static_cast<unsigned long long>(merged.duplicate_records));
    }
  }

  if (const auto json_path = args.get("json")) {
    const std::string text = sweep::merge_summary(merged).dump() + "\n";
    if (!support::write_text_file(*json_path, text)) {
      std::fprintf(stderr, "sweep_merge: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    if (!args.get_bool("quiet", false)) {
      std::printf("json summary written to %s\n", json_path->c_str());
    }
  }
  if (const auto csv_path = args.get("csv")) {
    if (!support::write_text_file(*csv_path, results.to_csv())) {
      std::fprintf(stderr, "sweep_merge: cannot write %s\n",
                   csv_path->c_str());
      return 1;
    }
    if (!args.get_bool("quiet", false)) {
      std::printf("csv written to %s\n", csv_path->c_str());
    }
  }
  return 0;
}
