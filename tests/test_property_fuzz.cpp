// Randomized cross-checks ("fuzz" suite): random graphs x random
// protocol parameters, with every paper invariant armed. These runs
// use seeds derived from the parameterized trial index, so failures
// are reproducible; the point is breadth - configurations no
// hand-written test would pick.
#include <gtest/gtest.h>

#include "beeping/engine.hpp"
#include "core/adversarial.hpp"
#include "core/bfw.hpp"
#include "core/convergence.hpp"
#include "core/invariants.hpp"
#include "core/timeout_bfw.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "radio/radio.hpp"

namespace beepkit {
namespace {

// Draws a random connected graph of a random family (n in [2, 60]).
graph::graph random_graph(support::rng& rng) {
  const std::size_t n = 2 + rng.uniform_below(59);
  switch (rng.uniform_below(8)) {
    case 0:
      return graph::make_path(n);
    case 1:
      return graph::make_cycle(std::max<std::size_t>(3, n));
    case 2:
      return graph::make_star(std::max<std::size_t>(2, n));
    case 3:
      return graph::make_complete(std::min<std::size_t>(n, 24));
    case 4:
      return graph::make_random_tree(n, rng);
    case 5:
      return graph::make_erdos_renyi_connected(n, 0.15, rng);
    case 6: {
      const std::size_t side = 2 + rng.uniform_below(6);
      return graph::make_grid(side, 1 + n / side);
    }
    default:
      return graph::make_caterpillar(std::max<std::size_t>(1, n / 4),
                                     rng.uniform_below(4));
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomGraphRandomPFullInvariants) {
  support::rng rng(0xf022 + static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto g = random_graph(rng);
  const double p = 0.02 + 0.96 * rng.uniform01();

  const core::bfw_machine machine(p);
  beeping::fsm_protocol proto(machine);
  beeping::engine sim(g, proto, rng.next_u64());
  core::invariant_options options;
  options.check_lemma11 = g.node_count() <= 40;
  options.check_lemma12 = g.node_count() <= 40;
  core::invariant_checker checker(g, proto, options);
  sim.add_observer(&checker);

  sim.run_rounds(300);
  EXPECT_TRUE(checker.ok())
      << g.name() << " p=" << p << ": " << checker.violations().front();
  EXPECT_GE(sim.leader_count(), 1U);
}

TEST_P(FuzzTest, ObserversDoNotPerturbDynamics) {
  support::rng rng(0x0b5e + static_cast<std::uint64_t>(GetParam()) * 104729);
  const auto g = random_graph(rng);
  const std::uint64_t seed = rng.next_u64();

  const core::bfw_machine machine(0.5);
  beeping::fsm_protocol bare_proto(machine);
  beeping::engine bare(g, bare_proto, seed);
  bare.run_rounds(150);

  beeping::fsm_protocol watched_proto(machine);
  beeping::engine watched(g, watched_proto, seed);
  core::invariant_checker checker(g, watched_proto,
                                  core::invariant_options{});
  watched.add_observer(&checker);
  watched.run_rounds(150);

  EXPECT_EQ(bare_proto.states(), watched_proto.states()) << g.name();
  EXPECT_EQ(bare.total_coins_consumed(), watched.total_coins_consumed());
}

TEST_P(FuzzTest, RadioWithCdReplaysBeeping) {
  support::rng rng(0x2ad1 + static_cast<std::uint64_t>(GetParam()) * 31337);
  const auto g = random_graph(rng);
  const std::uint64_t seed = rng.next_u64();

  const core::bfw_machine machine(0.5);
  beeping::fsm_protocol a(machine);
  beeping::fsm_protocol b(machine);
  beeping::engine beep(g, a, seed);
  radio::engine rad(g, b, seed, /*collision_detection=*/true);
  for (int round = 0; round < 120; ++round) {
    ASSERT_EQ(a.states(), b.states()) << g.name() << " round " << round;
    beep.step();
    rad.step();
  }
}

TEST_P(FuzzTest, RandomInitialLeaderSetsStillElect) {
  support::rng rng(0x1eadULL + static_cast<std::uint64_t>(GetParam()) * 271);
  const auto g = random_graph(rng);
  const std::size_t k = 1 + rng.uniform_below(g.node_count());
  const auto initial =
      core::random_leader_configuration(g.node_count(), k, rng);

  const auto diameter = graph::diameter_exact(g);
  const auto outcome = core::run_bfw_election_from(
      g, 0.5, initial, rng.next_u64(),
      4 * core::default_horizon(g, diameter));
  EXPECT_TRUE(outcome.converged) << g.name() << " k=" << k;
  EXPECT_EQ(outcome.final_leader_count, 1U);
}

TEST_P(FuzzTest, TimeoutVariantNeverGoesLeaderlessFromEq2Start) {
  // From the legitimate start, timeout-BFW may *gain* leaders via
  // reboots but - like BFW - can only lose a leader to a real wave:
  // it must never hit zero.
  support::rng rng(0x70ULL + static_cast<std::uint64_t>(GetParam()) * 631);
  const auto g = random_graph(rng);
  const core::timeout_bfw_machine machine(
      0.5, 8 + static_cast<std::uint32_t>(rng.uniform_below(32)));
  beeping::fsm_protocol proto(machine);
  beeping::engine sim(g, proto, rng.next_u64());
  for (int round = 0; round < 400; ++round) {
    sim.step();
    ASSERT_GE(sim.leader_count(), 1U) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace beepkit
