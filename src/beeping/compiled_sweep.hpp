// The beepc-generated round kernel: one templated plane sweep,
// instantiated per (protocol structure, SIMD width) by the generated
// TUs under src/beeping/kernels/.
//
// This is the engine's interpreted plane gear (engine.cpp,
// finish_step_plane_impl) with every runtime lookup hoisted to compile
// time through a Traits block: state and plane counts, per-state decode
// targets, beep/leader/identity routing, and the patience-chain layout
// all become constexpr, so the decode and routing unroll into
// straight-line word algebra with the transition masks folded into
// constants - no moved[] successor array, no table loads, no draw-kind
// branches. Batches of W words run through support::simd::wordvec<W>,
// which lowers to the native vector ISA (or unrolled scalar ILP).
//
// Bit-identity contract (the registry's acceptance bar): for any word
// range and any W, the sweep computes exactly the interpreted gear's
// planes, beep/leader/active words, ledger banks and leader/active
// counts, and consumes exactly its generator draws in the same order.
// The two liberties it takes are proven-safe:
//  * A batch is skipped only when ALL its words are quiet; quiet words
//    inside a processed batch go through the full algebra, which
//    reproduces their state bit-for-bit (quiet lanes sit in draw-free
//    bot self-loops, cannot be in beeping states - a beeper hears
//    itself - and so route to themselves with unchanged flags).
//  * Stochastic rows are resolved per node through plane_ctx::rules at
//    run time (parameter and successors are NOT baked in), in ascending
//    node order across the batch - the same draw sequence as the
//    scalar loop. One kernel therefore serves a whole protocol family
//    (every BFW p, coin or bernoulli).
//
// Traits requirements (emitted by tools/beepc):
//   static constexpr std::size_t state_count, plane_count,
//                                chain_count, draw_count;
//   static constexpr std::uint8_t meta[state_count];       // fused flags
//   static constexpr kernel_rule top[state_count], bot[state_count];
//   static constexpr bool chain_member[state_count];
//   static constexpr kernel_chain chains[max(1, chain_count)];
//   static constexpr std::uint16_t draw_slots[max(1, draw_count)];
//     // rule-table indices ((s << 1) | heard) of the stochastic rows
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "beeping/plane_kernel.hpp"
#include "support/simd.hpp"

namespace beepkit::beeping {

enum class sweep_mode {
  full,     ///< beeping engine: chains, active set, leader words, ledger
  display,  ///< stone-age engine: planes + beep + leader count only
};

namespace sweep_detail {

/// Compile-time-unrolled loop: f receives integral_constant<size_t, I>,
/// so Traits arrays indexed inside stay constant expressions.
template <std::size_t N, class F>
inline void unroll(F&& f) {
  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (f(std::integral_constant<std::size_t, I>{}), ...);
  }(std::make_index_sequence<N>{});
}

}  // namespace sweep_detail

template <class Traits, std::size_t W, sweep_mode M>
sweep_result compiled_sweep_impl(const plane_ctx& ctx, std::uint64_t* dirty,
                                 std::size_t wb, std::size_t we) {
  using vec = support::simd::wordvec<W>;
  using sweep_detail::unroll;
  constexpr std::size_t P = Traits::plane_count;
  constexpr std::size_t Q = Traits::state_count;
  constexpr std::size_t D = Traits::draw_count;
  sweep_result result;
  for (std::size_t w = wb; w < we; w += W) {
    if constexpr (W > 1) {
      // Narrow range tail: finish word-at-a-time (same algebra at
      // W = 1, so tiling boundaries never change a number).
      if (w + W > we) {
        const sweep_result tail =
            compiled_sweep_impl<Traits, 1, M>(ctx, dirty, w, we);
        result.leaders += tail.leaders;
        result.active += tail.active;
        break;
      }
    }
    vec valid = vec::splat(~0ULL);
    if (w + W >= ctx.words) valid.set_lane(ctx.words - 1 - w, ctx.tail_mask);
    const vec h = vec::load(ctx.heard + w);
    if constexpr (M == sweep_mode::full) {
      const vec act = vec::load(ctx.active + w);
      if (!(((h | act) & valid)).any()) {
        // Fully quiet batch: nothing moves, beeps, or draws; the
        // stored leader and active lanes still count.
        for (std::size_t l = 0; l < W; ++l) {
          result.leaders +=
              static_cast<std::size_t>(std::popcount(ctx.leader[w + l]));
          result.active +=
              static_cast<std::size_t>(std::popcount(act.lane(l)));
        }
        continue;
      }
    }
    vec b[P];
    unroll<P>([&](auto J) { b[J] = vec::load(ctx.planes[J] + w); });
    vec np[P];
    unroll<P>([&](auto J) { np[J] = vec::zero(); });
    vec beep_bits = vec::zero();
    vec leader_bits = vec::zero();
    vec active_bits = vec::zero();
    vec draw_mask[D == 0 ? 1 : D];
    if constexpr (D > 0) {
      unroll<D>([&](auto Dd) { draw_mask[Dd] = vec::zero(); });
    }
    // Routes a part to its compile-time successor: plane bits and flag
    // sets fold to constants, replacing the interpreted gear's moved[]
    // array and per-target meta loads.
    const auto route = [&](auto target, vec part) {
      constexpr std::size_t t = decltype(target)::value;
      unroll<P>([&](auto J) {
        if constexpr (((t >> decltype(J)::value) & 1U) != 0) np[J] |= part;
      });
      if constexpr ((Traits::meta[t] & machine_table::meta_beep) != 0) {
        beep_bits |= part;
      }
      if constexpr ((Traits::meta[t] & machine_table::meta_leader) != 0) {
        leader_bits |= part;
      }
      if constexpr ((Traits::meta[t] & machine_table::meta_bot_identity) ==
                    0) {
        active_bits |= part;
      }
    };
    // Bit-sliced comparison of the plane-encoded ids against a
    // compile-time constant (gt/eq accumulated highest plane first).
    const auto compare = [&](auto bound, vec& gt, vec& eq) {
      constexpr std::size_t k = decltype(bound)::value;
      gt = vec::zero();
      eq = valid;
      unroll<P>([&](auto Jr) {
        constexpr std::size_t j = P - 1 - decltype(Jr)::value;
        if constexpr (((k >> j) & 1U) != 0) {
          eq = eq & b[j];
        } else {
          gt = gt | (eq & b[j]);
          eq = andnot(eq, b[j]);
        }
      });
    };
    vec chain_members = vec::zero();
    if constexpr (Traits::chain_count > 0) {
      unroll<Traits::chain_count>([&](auto C) {
        constexpr kernel_chain chain = Traits::chains[decltype(C)::value];
        vec gt_last, eq_last;
        compare(std::integral_constant<std::size_t, chain.last>{}, gt_last,
                eq_last);
        vec ge_first = valid;
        if constexpr (chain.first != 0) {
          vec gt_before, eq_before;
          compare(std::integral_constant<std::size_t, chain.first - 1>{},
                  gt_before, eq_before);
          ge_first = gt_before;
        }
        const vec members = andnot(ge_first, gt_last);
        if (!members.any()) return;
        chain_members |= members;
        route(std::integral_constant<std::size_t, chain.top_next>{},
              members & h);
        // The run's last state exits the counter; its silent transition
        // is routed individually (it may even draw).
        const vec last_bot = andnot(eq_last, h);
        constexpr kernel_rule last_rule = Traits::bot[chain.last];
        if constexpr (last_rule.stochastic) {
          draw_mask[last_rule.draw] |= last_bot;
        } else {
          route(std::integral_constant<std::size_t, last_rule.next>{},
                last_bot);
        }
        // Every other silent member ticks its counter: one ripple-carry
        // add over the planes, restricted to those lanes.
        const vec inc = andnot(andnot(members, eq_last), h);
        if (inc.any()) {
          vec carry = inc;
          unroll<P>([&](auto J) {
            np[J] |= (b[J] ^ carry) & inc;
            carry = carry & b[J];
          });
          if constexpr ((chain.meta & machine_table::meta_beep) != 0) {
            beep_bits |= inc;
          }
          if constexpr ((chain.meta & machine_table::meta_leader) != 0) {
            leader_bits |= inc;
          }
          if constexpr ((chain.meta & machine_table::meta_bot_identity) == 0) {
            active_bits |= inc;
          }
        }
      });
    }
    // Per-state decode, fully unrolled; chain members are handled
    // above. State order is free: the routed parts are disjoint and
    // draws happen below in ascending node order regardless.
    unroll<Q>([&](auto S) {
      constexpr std::size_t s = decltype(S)::value;
      if constexpr (!Traits::chain_member[s]) {
        vec dec = andnot(valid, chain_members);
        unroll<P>([&](auto J) {
          constexpr std::size_t j = decltype(J)::value;
          if constexpr (((s >> j) & 1U) != 0) {
            dec = dec & b[j];
          } else {
            dec = andnot(dec, b[j]);
          }
        });
        if (!dec.any()) return;
        constexpr kernel_rule top = Traits::top[s];
        constexpr kernel_rule bot = Traits::bot[s];
        const vec top_part = dec & h;
        const vec bot_part = andnot(dec, h);
        if constexpr (top.stochastic) {
          draw_mask[top.draw] |= top_part;
        } else {
          route(std::integral_constant<std::size_t, top.next>{}, top_part);
        }
        if constexpr (bot.stochastic) {
          draw_mask[bot.draw] |= bot_part;
        } else {
          route(std::integral_constant<std::size_t, bot.next>{}, bot_part);
        }
      }
    });
    // Stochastic rows: per node, ascending across the whole batch, off
    // the runtime rule table - exactly the scalar loop's draw sequence.
    if constexpr (D > 0) {
      vec draw_union = vec::zero();
      unroll<D>([&](auto Dd) { draw_union |= draw_mask[decltype(Dd)::value]; });
      if (draw_union.any()) {
        for (std::size_t l = 0; l < W; ++l) {
          std::uint64_t pending = draw_union.lane(l);
          if (pending == 0) continue;
          std::uint64_t add_np[P] = {};
          std::uint64_t add_beep = 0;
          std::uint64_t add_leader = 0;
          std::uint64_t add_active = 0;
          while (pending != 0) {
            const auto offset =
                static_cast<std::size_t>(std::countr_zero(pending));
            const std::uint64_t mask = pending & (~pending + 1);
            pending &= pending - 1;
            const std::size_t u = ((w + l) << 6) + offset;
            state_id t = 0;
            unroll<D>([&](auto Dd) {
              constexpr std::size_t d = decltype(Dd)::value;
              // Parts are disjoint: exactly one slot claims the bit.
              if ((draw_mask[d].lane(l) & mask) != 0) {
                t = apply_rule(ctx.rules[Traits::draw_slots[d]], ctx.rngs[u]);
              }
            });
            const std::uint8_t t_meta = Traits::meta[t];
            for (std::size_t j = 0; j < P; ++j) {
              if (((static_cast<std::size_t>(t) >> j) & 1U) != 0) {
                add_np[j] |= mask;
              }
            }
            if ((t_meta & machine_table::meta_beep) != 0) add_beep |= mask;
            if ((t_meta & machine_table::meta_leader) != 0) add_leader |= mask;
            if ((t_meta & machine_table::meta_bot_identity) == 0) {
              add_active |= mask;
            }
          }
          for (std::size_t j = 0; j < P; ++j) {
            np[j].set_lane(l, np[j].lane(l) | add_np[j]);
          }
          beep_bits.set_lane(l, beep_bits.lane(l) | add_beep);
          leader_bits.set_lane(l, leader_bits.lane(l) | add_leader);
          active_bits.set_lane(l, active_bits.lane(l) | add_active);
        }
      }
    }
    unroll<P>([&](auto J) { np[J].store(ctx.planes[J] + w); });
    beep_bits.store(ctx.beep + w);
    if constexpr (M == sweep_mode::full) {
      leader_bits.store(ctx.leader + w);
      active_bits.store(ctx.active + w);
    }
    for (std::size_t l = 0; l < W; ++l) {
      result.leaders +=
          static_cast<std::size_t>(std::popcount(leader_bits.lane(l)));
      if constexpr (M == sweep_mode::full) {
        result.active +=
            static_cast<std::size_t>(std::popcount(active_bits.lane(l)));
      }
    }
    if constexpr (M == sweep_mode::full) {
      // Ledger: bank this round's +1s with one ripple-carry add into
      // the vertical counters; a zero carry lane rewrites its word
      // unchanged, so the vectorized add stays value-identical to the
      // interpreted per-word loop.
      if (beep_bits.any()) {
        for (std::size_t l = 0; l < W; ++l) {
          if (beep_bits.lane(l) != 0) {
            dirty[(w + l) >> 6] |= 1ULL << ((w + l) & 63);
          }
        }
        vec carry = beep_bits;
        for (std::size_t j = 0; j < 8 && carry.any(); ++j) {
          const vec old = vec::load(ctx.ledger[j] + w);
          (old ^ carry).store(ctx.ledger[j] + w);
          carry = carry & old;
        }
      }
    }
  }
  return result;
}

/// Full-mode entry point (beeping engine), register-ready.
template <class Traits, std::size_t W>
sweep_result compiled_sweep(const plane_ctx& ctx, std::uint64_t* dirty,
                            std::size_t wb, std::size_t we) {
  return compiled_sweep_impl<Traits, W, sweep_mode::full>(ctx, dirty, wb, we);
}

/// Display-mode entry point (stone-age engine).
template <class Traits, std::size_t W>
sweep_result compiled_display_sweep(const plane_ctx& ctx, std::size_t wb,
                                    std::size_t we) {
  return compiled_sweep_impl<Traits, W, sweep_mode::display>(ctx, nullptr, wb,
                                                             we);
}

}  // namespace beepkit::beeping
