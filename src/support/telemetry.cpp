#include "support/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <vector>

#include "support/build_info.hpp"
#include "support/table.hpp"

namespace beepkit::support::telemetry {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_stride{64};
std::atomic<bool> g_trace_enabled{false};

std::chrono::steady_clock::time_point trace_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool enabled() noexcept {
  if constexpr (!compiled_in) return false;
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t round_sample_stride() noexcept {
  return g_stride.load(std::memory_order_relaxed);
}

void set_round_sample_stride(std::uint64_t stride) noexcept {
  g_stride.store(stride, std::memory_order_relaxed);
}

bool round_sampled(std::uint64_t round) noexcept {
  const std::uint64_t stride = g_stride.load(std::memory_order_relaxed);
  return stride != 0 && round % stride == 0;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

// ---- log2_histogram ------------------------------------------------------

namespace {

std::size_t value_bucket(std::uint64_t value) noexcept {
  return static_cast<std::size_t>(std::bit_width(value));
}

double bucket_lo(std::size_t b) noexcept {
  return b <= 1 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
}

double bucket_hi(std::size_t b) noexcept {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
}

}  // namespace

void log2_histogram::record(std::uint64_t value) noexcept {
  ++buckets_[value_bucket(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void log2_histogram::merge(const log2_histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < bucket_count; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void log2_histogram::reset() noexcept { *this = log2_histogram{}; }

double log2_histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 1.0) return static_cast<double>(max_);
  const double target = p * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    const double c = static_cast<double>(buckets_[b]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      const double frac = (target - cum) / c;
      double v = bucket_lo(b) + frac * (bucket_hi(b) - bucket_lo(b));
      v = std::min(v, static_cast<double>(max_));
      v = std::max(v, static_cast<double>(min()));
      return v;
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

json log2_histogram::to_json() const {
  return json(json::object{
      {"count", json(count_)},
      {"sum", json(sum_)},
      {"min", json(min())},
      {"max", json(max_)},
      {"mean", json(mean())},
      {"p50", json(percentile(0.50))},
      {"p90", json(percentile(0.90))},
      {"p99", json(percentile(0.99))},
  });
}

// ---- registry ------------------------------------------------------------

struct registry::impl {
  mutable std::mutex mutex;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, std::string, std::less<>> infos;
  std::map<std::string, log2_histogram, std::less<>> histograms;
};

registry& registry::global() {
  static registry instance;
  return instance;
}

registry::impl& registry::state() const {
  static impl the_state;
  return the_state;
}

namespace {

template <typename Map, typename Key>
auto& slot(Map& map, const Key& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), typename Map::mapped_type{}).first;
  }
  return it->second;
}

}  // namespace

void registry::add(std::string_view name, std::uint64_t delta) {
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  slot(s.counters, name) += delta;
}

void registry::set_gauge(std::string_view name, double value) {
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  slot(s.gauges, name) = value;
}

void registry::set_info(std::string_view name, std::string_view value) {
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  slot(s.infos, name) = std::string(value);
}

void registry::record(std::string_view name, std::uint64_t value) {
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  slot(s.histograms, name).record(value);
}

void registry::merge_histogram(std::string_view name, const log2_histogram& h) {
  if (h.count() == 0) return;
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  slot(s.histograms, name).merge(h);
}

std::uint64_t registry::counter(std::string_view name) const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

double registry::gauge(std::string_view name) const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.gauges.find(name);
  return it == s.gauges.end() ? 0.0 : it->second;
}

std::string registry::info(std::string_view name) const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.infos.find(name);
  return it == s.infos.end() ? std::string{} : it->second;
}

log2_histogram registry::histogram(std::string_view name) const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.histograms.find(name);
  return it == s.histograms.end() ? log2_histogram{} : it->second;
}

json registry::snapshot() const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  json::object counters;
  for (const auto& [name, value] : s.counters)
    counters.emplace_back(name, json(value));
  json::object gauges;
  for (const auto& [name, value] : s.gauges)
    gauges.emplace_back(name, json(value));
  json::object infos;
  for (const auto& [name, value] : s.infos)
    infos.emplace_back(name, json(value));
  json::object histograms;
  for (const auto& [name, h] : s.histograms)
    histograms.emplace_back(name, h.to_json());
  return json(json::object{
      {"build", build_info::current().to_json()},
      {"counters", json(std::move(counters))},
      {"gauges", json(std::move(gauges))},
      {"infos", json(std::move(infos))},
      {"histograms", json(std::move(histograms))},
  });
}

std::string registry::to_prometheus() const {
  const impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::string out;
  for (const auto& [name, value] : s.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + json(value).dump() + "\n";
  }
  for (const auto& [name, value] : s.infos) {
    out += "# TYPE " + name + "_info gauge\n";
    out += name + "_info{value=" + json(value).dump() + "} 1\n";
  }
  for (const auto& [name, h] : s.histograms) {
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " + json(h.percentile(0.5)).dump() + "\n";
    out += name + "{quantile=\"0.9\"} " + json(h.percentile(0.9)).dump() + "\n";
    out += name + "{quantile=\"0.99\"} " + json(h.percentile(0.99)).dump() + "\n";
    out += name + "_sum " + std::to_string(h.sum()) + "\n";
    out += name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

void registry::reset() {
  impl& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.counters.clear();
  s.gauges.clear();
  s.infos.clear();
  s.histograms.clear();
}

void fold_engine_metrics(const engine_metrics& m, std::string_view prefix) {
  if (!compiled_in || !enabled()) return;
  if (m.rounds_total() == 0 && m.tile_claims == 0) return;
  registry& reg = registry::global();
  const std::string p(prefix);
  reg.add(p + "_rounds_virtual_total", m.rounds_virtual);
  reg.add(p + "_rounds_sparse_total", m.rounds_sparse);
  reg.add(p + "_rounds_plane_interpreted_total", m.rounds_plane_interpreted);
  reg.add(p + "_rounds_plane_compiled_total", m.rounds_plane_compiled);
  reg.add(p + "_plane_entries_total", m.plane_entries);
  reg.add(p + "_plane_exits_total", m.plane_exits);
  reg.add(p + "_materializations_total", m.materializations);
  reg.add(p + "_quiet_words_sampled_total", m.quiet_words);
  reg.add(p + "_scanned_words_sampled_total", m.scanned_words);
  reg.add(p + "_sampled_rounds_total", m.sampled_rounds);
  if (m.faults_applied != 0) {
    reg.add(p + "_faults_applied_total", m.faults_applied);
  }
  if (m.fault_patched_words != 0) {
    reg.add(p + "_fault_patched_words_total", m.fault_patched_words);
  }
  if (m.noise_passes_tiled + m.noise_passes_serial != 0) {
    reg.add(p + "_noise_passes_tiled_total", m.noise_passes_tiled);
    reg.add(p + "_noise_passes_serial_total", m.noise_passes_serial);
  }
  if (m.sparse_rounds_tiled + m.sparse_rounds_serial != 0) {
    reg.add(p + "_sparse_rounds_tiled_total", m.sparse_rounds_tiled);
    reg.add(p + "_sparse_rounds_serial_total", m.sparse_rounds_serial);
  }
  reg.merge_histogram(p + "_round_ns", m.round_ns);
  if (m.tile_claims != 0) {
    reg.add(p + "_tile_claims_total", m.tile_claims);
    reg.add(p + "_tile_claimed_words_total", m.tile_claimed_words);
    reg.set_gauge(p + "_tile_imbalance", m.tile_imbalance);
  }
}

json snapshot() { return registry::global().snapshot(); }

// ---- trace recorder ------------------------------------------------------

namespace {

struct trace_event {
  std::string name;
  std::string cat;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint32_t tid;
};

constexpr std::size_t max_trace_events = 1u << 20;

struct trace_state {
  std::mutex mutex;
  std::vector<trace_event> events;
  std::uint64_t dropped = 0;
};

trace_state& traces() {
  static trace_state state;
  return state;
}

}  // namespace

bool trace_enabled() noexcept {
  if constexpr (!compiled_in) return false;
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) noexcept {
  if (on) (void)trace_epoch();  // pin the epoch before the first span
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t trace_tid() noexcept {
  static std::atomic<std::uint32_t> next_tid{1};
  thread_local const std::uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void trace_complete(std::string_view name, std::string_view cat,
                    std::uint64_t start_ns, std::uint64_t dur_ns) {
  if (!trace_enabled()) return;
  const std::uint32_t tid = trace_tid();
  trace_state& state = traces();
  const std::lock_guard<std::mutex> lock(state.mutex);
  if (state.events.size() >= max_trace_events) {
    ++state.dropped;
    return;
  }
  state.events.push_back(trace_event{std::string(name), std::string(cat),
                                     start_ns, dur_ns, tid});
}

std::size_t trace_event_count() noexcept {
  trace_state& state = traces();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.events.size();
}

std::uint64_t trace_dropped() noexcept {
  trace_state& state = traces();
  const std::lock_guard<std::mutex> lock(state.mutex);
  return state.dropped;
}

void reset_trace() {
  trace_state& state = traces();
  const std::lock_guard<std::mutex> lock(state.mutex);
  state.events.clear();
  state.dropped = 0;
}

bool write_chrome_trace(const std::string& path) {
  json::array events;
  std::uint64_t dropped = 0;
  {
    trace_state& state = traces();
    const std::lock_guard<std::mutex> lock(state.mutex);
    events.reserve(state.events.size());
    for (const trace_event& e : state.events) {
      events.push_back(json(json::object{
          {"name", json(e.name)},
          {"cat", json(e.cat)},
          {"ph", json("X")},
          {"ts", json(static_cast<double>(e.start_ns) / 1000.0)},
          {"dur", json(static_cast<double>(e.dur_ns) / 1000.0)},
          {"pid", json(1)},
          {"tid", json(e.tid)},
      }));
    }
    dropped = state.dropped;
  }
  json doc(json::object{
      {"traceEvents", json(std::move(events))},
      {"displayTimeUnit", json("ms")},
      {"otherData", json(json::object{
                        {"build", json(build_info::current().one_line())},
                        {"dropped_events", json(dropped)},
                    })},
  });
  return write_text_file(path, doc.dump() + "\n");
}

}  // namespace beepkit::support::telemetry
