// Graph generators covering the topologies used throughout the paper's
// discussion and our experiment suite: high-diameter graphs (paths,
// cycles, caterpillars) where the O(D^2 log n) bound bites, low-diameter
// graphs (cliques, stars, hypercubes, expanders) where it is mild, and
// random families for property tests. Every randomized generator is
// deterministic in its seed and guarantees connectivity.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace beepkit::graph {

/// Path P_n: diameter n-1. n >= 1.
[[nodiscard]] graph make_path(std::size_t n);

/// Cycle C_n: diameter floor(n/2). n >= 3.
[[nodiscard]] graph make_cycle(std::size_t n);

/// Complete graph K_n: diameter 1. n >= 1.
[[nodiscard]] graph make_complete(std::size_t n);

/// Star S_n: one hub, n-1 leaves; diameter 2. n >= 2.
[[nodiscard]] graph make_star(std::size_t n);

/// Wheel W_n: cycle of n-1 nodes plus a hub. n >= 4.
[[nodiscard]] graph make_wheel(std::size_t n);

/// rows x cols grid; diameter rows+cols-2.
[[nodiscard]] graph make_grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (wrap-around grid); rows, cols >= 3.
[[nodiscard]] graph make_torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube Q_d: 2^d nodes, diameter d. d >= 1.
[[nodiscard]] graph make_hypercube(std::size_t dimensions);

/// Complete binary tree with n nodes (heap layout); diameter ~2 log2 n.
[[nodiscard]] graph make_complete_binary_tree(std::size_t n);

/// Caterpillar: a spine path of `spine` nodes, each with `legs` leaves.
[[nodiscard]] graph make_caterpillar(std::size_t spine, std::size_t legs);

/// Barbell: two K_m cliques joined by a path of `bridge` nodes.
[[nodiscard]] graph make_barbell(std::size_t m, std::size_t bridge);

/// Lollipop: K_m clique with a path of `tail` nodes attached.
[[nodiscard]] graph make_lollipop(std::size_t m, std::size_t tail);

/// Uniform random labelled tree on n nodes via a random Pruefer
/// sequence. n >= 1.
[[nodiscard]] graph make_random_tree(std::size_t n, support::rng& rng);

/// G(n, p) conditioned on connectivity: samples until connected, with a
/// spanning-tree fallback (a random tree is added) if `p` is too small
/// to connect within a bounded number of attempts. n >= 1.
[[nodiscard]] graph make_erdos_renyi_connected(std::size_t n, double p,
                                               support::rng& rng);

/// Random geometric graph on the unit square with connection radius
/// `radius`; augmented with a path through the nodes sorted by x (then
/// y) if disconnected, preserving the local/metric structure the model
/// motivates (wireless/biological proximity networks).
[[nodiscard]] graph make_random_geometric(std::size_t n, double radius,
                                          support::rng& rng);

/// Random d-regular graph via the pairing model with retries (rejecting
/// self-loops/multi-edges); requires n*d even, d < n. Falls back to
/// repeated resampling; throws std::runtime_error if it cannot produce
/// a simple connected graph after many attempts (does not happen for
/// the d >= 3, n >= 8 parameters used in the experiments).
[[nodiscard]] graph make_random_regular(std::size_t n, std::size_t d,
                                        support::rng& rng);

}  // namespace beepkit::graph
